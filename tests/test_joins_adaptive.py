"""Adaptive per-round algorithm choice tests."""

import pytest

from repro.joins.adaptive import AdaptiveJoin
from repro.joins.runner import run_snapshot
from repro.query.parser import parse_query
from repro.query.query import JoinQuery, Once


@pytest.fixture()
def setup(make_deployment):
    return make_deployment(150, seed=6, drift_rate=0.0001)


def selective_query():
    return parse_query(
        "SELECT A.hum, B.hum FROM sensors A, sensors B "
        "WHERE A.temp - B.temp > 12.5 SAMPLE PERIOD 60"
    )


def unselective_query():
    return parse_query(
        "SELECT A.hum, B.hum FROM sensors A, sensors B "
        "WHERE A.temp - B.temp > 0.1 SAMPLE PERIOD 60"
    )


def test_pessimistic_start_switches_to_sens(setup):
    """Start assuming 90% fraction (external); after measuring a selective
    round, the planner must switch to SENS-Join."""
    network, world = setup
    executor = AdaptiveJoin(network, world, selective_query(), tree_seed=6,
                            initial_fraction=0.9)
    _, first = executor.run_round(0.0)
    assert first == "external-join"
    _, second = executor.run_round(60.0)
    assert second == "sens-join"


def test_unselective_query_stays_external(setup):
    network, world = setup
    executor = AdaptiveJoin(network, world, unselective_query(), tree_seed=6,
                            initial_fraction=0.9)
    for round_index in range(3):
        _, name = executor.run_round(round_index * 60.0)
        assert name == "external-join", round_index


def test_results_exact_regardless_of_choice(setup):
    network, world = setup
    query = selective_query()
    executor = AdaptiveJoin(network, world, query, tree_seed=6, initial_fraction=0.9)
    for round_index in range(3):
        t = round_index * 60.0
        outcome, _name = executor.run_round(t)
        once = JoinQuery(query.select, query.relations, query.where, Once())
        reference = run_snapshot(
            network, world, once, "external-join", tree_seed=6, snapshot_time=t
        )
        assert outcome.result.signature() == reference.result.signature()


def test_history_records_choices_and_fractions(setup):
    network, world = setup
    executor = AdaptiveJoin(network, world, selective_query(), tree_seed=6)
    executor.run_round(0.0)
    executor.run_round(60.0)
    assert len(executor.history) == 2
    for name, fraction in executor.history:
        assert name in ("sens-join", "external-join")
        assert 0.0 <= fraction <= 1.0


def test_adaptive_beats_static_worst_choice(setup):
    """Across rounds of a selective query, the adaptive executor's total
    cost must be below always-running the external join (it pays at most
    one exploratory round)."""
    network, world = setup
    query = selective_query()
    executor = AdaptiveJoin(network, world, query, tree_seed=6, initial_fraction=0.9)
    adaptive_total = sum(
        executor.run_round(r * 60.0)[0].total_transmissions for r in range(4)
    )
    once = JoinQuery(query.select, query.relations, query.where, Once())
    external_total = 0
    for round_index in range(4):
        outcome = run_snapshot(
            network, world, once, "external-join", tree_seed=6,
            snapshot_time=round_index * 60.0,
        )
        external_total += outcome.total_transmissions
    assert adaptive_total < external_total
