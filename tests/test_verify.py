"""Differential harness tests: planning, invariants, shrinking, replay.

The centrepiece is the mutation smoke test: an intentionally injected
quantization bug (cell bounds narrowed so they no longer contain the raw
value) must be *caught* by the fuzz loop, *shrunk* to a minimal spec,
written as a replayable artifact, and *reproduced* by ``replay`` while the
bug is present — and not reproduced once the mutation is reverted.
"""

import json
from dataclasses import replace

import pytest

from repro.codec.quantize import QuantizedDimension
from repro.errors import TraceFormatError
from repro.sim.faults import Fault, FaultPlan, LINK_DROP, LOSS_BURST, NODE_CRASH
from repro.verify import (
    ENGINES,
    INVARIANTS,
    ReproArtifact,
    TrialReport,
    TrialSpec,
    Violation,
    build_trial,
    fuzz,
    plan_trials,
    replay,
    run_trial,
    shrink,
)
from repro.verify.__main__ import main as verify_main


class TestPlanning:
    def test_same_seed_same_trials(self):
        assert plan_trials(20, 0) == plan_trials(20, 0)
        assert plan_trials(20, 0) != plan_trials(20, 1)

    def test_small_run_covers_every_engine(self):
        specs = plan_trials(len(ENGINES), 0)
        assert {spec.engine for spec in specs} == set(ENGINES)

    def test_faults_only_for_des_engine(self):
        for spec in plan_trials(60, 0):
            if spec.fault_count:
                assert spec.engine == "des-sensjoin"

    def test_spec_json_round_trip(self):
        for spec in plan_trials(10, 5):
            rebuilt = TrialSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
            assert rebuilt == spec

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown engine"):
            TrialSpec(seed=0, engine="bogus")
        with pytest.raises(ValueError, match="des-sensjoin"):
            TrialSpec(seed=0, engine="sens-join", crash_count=1)
        with pytest.raises(ValueError, match="loss_rate"):
            TrialSpec(seed=0, engine="sens-join", loss_rate=1.5)
        with pytest.raises(ValueError, match="template"):
            TrialSpec(seed=0, engine="sens-join", relations="two", template=3)

    def test_fault_plan_round_trip(self):
        plan = FaultPlan(
            (
                Fault(time_s=0.01, kind=NODE_CRASH, node_a=3),
                Fault(time_s=0.002, kind=LINK_DROP, node_a=1, node_b=2),
                Fault(time_s=0.005, kind=LOSS_BURST, duration_s=1.0, loss_rate=0.4),
            )
        )
        rebuilt = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert rebuilt == plan

    def test_build_trial_is_deterministic(self):
        spec = plan_trials(1, 7)[0]
        a, b = build_trial(spec), build_trial(spec)
        positions_a = {n: (node.x, node.y) for n, node in a.network.nodes.items()}
        positions_b = {n: (node.x, node.y) for n, node in b.network.nodes.items()}
        assert positions_a == positions_b
        assert a.query.sql() == b.query.sql()
        assert a.fault_plan == b.fault_plan


class TestTrials:
    def test_clean_trial_passes_all_invariants(self):
        report = run_trial(TrialSpec(seed=5, engine="sens-join", node_count=16))
        assert report.passed, report.violations

    def test_determinism_double_run_passes(self):
        report = run_trial(
            TrialSpec(seed=5, engine="sens-join", node_count=12, check_determinism=True)
        )
        assert report.passed, report.violations
        assert report.execution.replay_fingerprint is not None

    def test_faulted_des_trial_passes_subset_invariant(self):
        report = run_trial(
            TrialSpec(
                seed=9,
                engine="des-sensjoin",
                node_count=16,
                crash_count=2,
                link_drop_count=1,
            )
        )
        assert report.passed, report.violations

    # Regression pins for the stateful executors: the fuzzer found no
    # engine-vs-oracle mismatch under loss, so these keep it that way —
    # the link-layer ARQ must make every round exact even at 30% loss.
    @pytest.mark.parametrize("engine", ["adaptive", "incremental"])
    def test_stateful_engines_exact_under_loss(self, engine):
        report = run_trial(
            TrialSpec(seed=11, engine=engine, node_count=24, loss_rate=0.3)
        )
        assert report.passed, report.violations
        retx = sum(
            obs.outcome.stats.total_retx_packets() for obs in report.execution.rounds
        )
        assert retx > 0, "30% loss must cause ARQ retransmissions"


class TestShrinker:
    def test_shrinks_along_axes_with_fake_executor(self):
        """A failure that only depends on loss>0 shrinks everything else."""

        def execute(spec):
            violations = (
                [Violation("engine-matches-oracle", "boom")] if spec.loss_rate else []
            )
            return TrialReport(spec=spec, violations=violations)

        original = TrialSpec(
            seed=1,
            engine="sens-join",
            deployment="uniform",
            node_count=48,
            relations="two",
            template=1,
            threshold=2.0,
            loss_rate=0.3,
            check_determinism=True,
        )
        result = shrink(execute(original), execute=execute)
        assert result.spec.loss_rate == 0.3  # the failure's cause survives
        assert result.spec.node_count == 12
        assert result.spec.deployment == "grid"
        assert result.spec.relations == "self"
        assert result.spec.check_determinism is False
        assert result.steps

    def test_different_invariant_not_accepted(self):
        """A candidate failing a *different* invariant is not a shrink."""

        def execute(spec):
            name = (
                "engine-matches-oracle" if spec.node_count > 12 else "zcurve-roundtrip"
            )
            return TrialReport(spec=spec, violations=[Violation(name, "x")])

        original = TrialSpec(seed=1, engine="sens-join", node_count=48)
        result = shrink(execute(original), execute=execute)
        assert result.invariant == "engine-matches-oracle"
        assert result.spec.node_count > 12


class TestMutationSmoke:
    """Inject a quantization bug; the harness must catch/shrink/replay it."""

    @staticmethod
    def _narrowed_bounds(self, cell):
        # Deliberately wrong: the interval no longer covers the whole cell
        # (nor the boundary sentinels), so raw values escape their bounds
        # and the conservative semi-join dismisses real matches.
        lo = self.min_value + cell * self.resolution + 0.75 * self.resolution
        return lo, lo + 0.1 * self.resolution

    def test_injected_bug_is_caught_shrunk_and_replayed(self, tmp_path, monkeypatch):
        artifact_dir = tmp_path / "artifacts"
        with monkeypatch.context() as m:
            m.setattr(QuantizedDimension, "bounds_of", self._narrowed_bounds)
            report = fuzz(
                trials=1,
                seed=0,
                engines=("sens-join",),
                artifact_dir=artifact_dir,
            )
            assert not report.ok
            failure = report.failures[0]
            assert failure.artifact_path is not None
            assert failure.artifact_path.exists()
            # Shrinking reached the smallest deployment on the ladder.
            assert failure.minimal_spec.node_count == 12
            # The artifact replays: the violation reproduces under the bug.
            artifact = ReproArtifact.load(failure.artifact_path)
            assert artifact.invariant == failure.violation.invariant
            assert replay(artifact).reproduced
        # Mutation reverted: the same artifact no longer reproduces.
        outcome = replay(ReproArtifact.load(failure.artifact_path))
        assert not outcome.reproduced
        assert outcome.report.passed


class TestArtifacts:
    def test_artifact_json_round_trip(self, tmp_path):
        artifact = ReproArtifact(
            invariant="zcurve-roundtrip",
            message="it broke",
            spec=TrialSpec(seed=3, engine="external-join"),
            original_spec=TrialSpec(seed=3, engine="external-join", node_count=48),
            shrink_steps=["node_count 48 -> 16"],
            meta={"master_seed": 0, "trial_index": 4},
        )
        path = artifact.save(tmp_path / "a.json")
        loaded = ReproArtifact.load(path)
        assert loaded.spec == artifact.spec
        assert loaded.original_spec == artifact.original_spec
        assert loaded.invariant == artifact.invariant
        assert loaded.meta["trial_index"] == 4

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "nope/9", "invariant": "x", "spec": {}}))
        with pytest.raises(TraceFormatError, match="format"):
            ReproArtifact.load(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{")
        with pytest.raises(TraceFormatError, match="JSON"):
            ReproArtifact.load(path)


class TestCli:
    def test_list_exits_zero(self, capsys):
        assert verify_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in INVARIANTS:
            assert name in out

    def test_fuzz_smoke_exits_zero(self, capsys):
        assert verify_main(["fuzz", "--trials", "2", "--seed", "0"]) == 0
        assert "2/2 trial(s) passed" in capsys.readouterr().out

    def test_fuzz_rejects_unknown_engine(self):
        assert verify_main(["fuzz", "--trials", "1", "--engines", "warp-join"]) == 2

    def test_replay_stale_artifact_exits_one(self, tmp_path, capsys):
        artifact = ReproArtifact(
            invariant="engine-matches-oracle",
            message="was a bug once",
            spec=TrialSpec(seed=5, engine="sens-join", node_count=12),
        )
        path = artifact.save(tmp_path / "stale.json")
        assert verify_main(["replay", str(path)]) == 1
        assert "stale" in capsys.readouterr().out


class TestInvariantCatalogue:
    def test_catalogue_is_documented(self):
        for invariant in INVARIANTS.values():
            assert invariant.description
        assert list(INVARIANTS)[0] == "engine-matches-oracle"


class TestScaleAxes:
    """The large-deployment ladder and the routing-mode trial axis."""

    def test_routing_derived_from_seed_without_rng_consumption(self):
        specs = plan_trials(40, 0)
        for spec in specs:
            expected = "cluster" if spec.seed % 4 == 0 else "flat"
            assert spec.routing == expected
        assert {spec.routing for spec in specs} == {"flat", "cluster"}

    def test_routing_pin_applies_to_every_trial(self):
        for mode in ("flat", "cluster"):
            specs = plan_trials(12, 3, routing=mode)
            assert {spec.routing for spec in specs} == {mode}

    def test_routing_axis_does_not_reshuffle_other_fields(self):
        """Turning the axis on must not have consumed the rng stream."""
        derived = plan_trials(15, 7)
        pinned = plan_trials(15, 7, routing="flat")
        for a, b in zip(derived, pinned):
            assert replace(a, routing="flat") == b

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError, match="unknown routing mode"):
            TrialSpec(seed=0, engine="sens-join", routing="mesh")
        with pytest.raises(ValueError, match="unknown routing"):
            plan_trials(4, 0, routing="mesh")

    def test_large_ladder_swaps_node_counts(self):
        from repro.verify.generators import LARGE_NODE_LADDER, NODE_LADDER

        small = plan_trials(30, 0)
        large = plan_trials(30, 0, large=True)
        assert {s.node_count for s in small} <= set(NODE_LADDER)
        assert {s.node_count for s in large} <= set(LARGE_NODE_LADDER)
        assert max(s.node_count for s in large) > max(NODE_LADDER)
        # The determinism double-run is skipped on the large ladder.
        assert not any(s.check_determinism for s in large)

    def test_describe_mentions_cluster_routing(self):
        spec = TrialSpec(seed=0, engine="sens-join", routing="cluster")
        assert "cluster" in spec.describe()
        assert "cluster" not in TrialSpec(seed=0, engine="sens-join").describe()

    def test_cluster_trial_passes_invariants(self):
        spec = TrialSpec(
            seed=5, engine="sens-join", node_count=24, routing="cluster"
        )
        report = run_trial(spec)
        assert report.passed, report.violations


class TestScaleShrinking:
    def test_shrink_bisects_node_count(self):
        """A count-threshold failure walks down in O(log n), not ladder steps."""

        def execute(spec):
            violations = (
                [Violation("engine-matches-oracle", "boom")]
                if spec.node_count >= 100
                else []
            )
            return TrialReport(spec=spec, violations=violations)

        original = TrialSpec(seed=1, engine="sens-join", node_count=2048)
        result = shrink(execute(original), execute=execute)
        assert result.spec.node_count < 2048
        assert result.spec.node_count >= 100
        assert any("bisect" in step for step in result.steps)
        # Logarithmic convergence: far fewer attempts than a walk from 2k.
        assert result.attempts <= 30

    def test_shrink_drops_cluster_routing_when_irrelevant(self):
        def execute(spec):
            violations = (
                [Violation("engine-matches-oracle", "boom")] if spec.loss_rate else []
            )
            return TrialReport(spec=spec, violations=violations)

        original = TrialSpec(
            seed=1,
            engine="sens-join",
            node_count=48,
            loss_rate=0.2,
            routing="cluster",
        )
        result = shrink(execute(original), execute=execute)
        assert result.spec.routing == "flat"
        assert result.spec.loss_rate == 0.2

    def test_shrink_keeps_cluster_routing_when_load_bearing(self):
        def execute(spec):
            violations = (
                [Violation("engine-matches-oracle", "boom")]
                if spec.routing == "cluster"
                else []
            )
            return TrialReport(spec=spec, violations=violations)

        original = TrialSpec(
            seed=1, engine="sens-join", node_count=48, routing="cluster"
        )
        result = shrink(execute(original), execute=execute)
        assert result.spec.routing == "cluster"
