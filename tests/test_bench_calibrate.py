"""Selectivity calibration tests."""

import pytest

from repro.bench.calibrate import (
    calibrate_threshold,
    measure_result_fraction,
    snapshot_rows,
)
from repro.query.parser import parse_query


def query_for(threshold):
    return parse_query(
        f"SELECT A.hum, B.hum FROM sensors A, sensors B "
        f"WHERE A.temp - B.temp > {threshold} ONCE"
    )


def test_measure_fraction_bounds(small_world):
    everything = measure_result_fraction(small_world, query_for(-999))
    nothing = measure_result_fraction(small_world, query_for(999))
    assert everything == 1.0
    assert nothing == 0.0


def test_fraction_monotone_in_threshold(small_world):
    fractions = [
        measure_result_fraction(small_world, query_for(t)) for t in (0.5, 1.5, 3.0)
    ]
    assert fractions == sorted(fractions, reverse=True)


def test_calibration_hits_target(small_world):
    threshold, achieved = calibrate_threshold(
        small_world, query_for, target_fraction=0.10, lo=0.0, hi=10.0, increasing=False,
        tolerance=0.02,
    )
    assert abs(achieved - 0.10) <= 0.02
    # Verify independently.
    assert measure_result_fraction(small_world, query_for(threshold)) == pytest.approx(
        achieved
    )


def test_calibration_validates_inputs(small_world):
    with pytest.raises(ValueError):
        calibrate_threshold(small_world, query_for, 1.5, 0.0, 1.0)
    with pytest.raises(ValueError):
        calibrate_threshold(small_world, query_for, 0.5, 2.0, 1.0)


def test_calibration_returns_best_effort(small_world):
    # An unreachable target (fraction between two achievable steps with a
    # tiny tolerance) still returns the closest achieved value.
    threshold, achieved = calibrate_threshold(
        small_world, query_for, target_fraction=0.07, lo=0.0, hi=10.0,
        increasing=False, tolerance=0.0, max_iterations=12,
    )
    assert 0.0 <= achieved <= 1.0


def test_snapshot_rows_respects_selections(small_world):
    query = parse_query(
        "SELECT A.hum, B.hum FROM sensors A, sensors B "
        "WHERE A.temp > 9999 AND A.temp - B.temp > 1 ONCE"
    )
    rows = snapshot_rows(small_world, query)
    assert rows["A"] == []
    assert len(rows["B"]) == len(small_world.network.sensor_node_ids)
