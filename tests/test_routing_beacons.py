"""Distributed beaconing (DES-driven CTP) tests."""

import pytest

from repro.errors import RoutingError
from repro.routing.beacons import BeaconConfig, BeaconProtocol
from repro.routing.ctp import build_tree
from repro.sim.kernel import Environment
from repro.sim.network import DeploymentConfig, deploy_uniform
from repro.sim.node import BASE_STATION_ID


@pytest.fixture()
def beacon_network():
    config = DeploymentConfig(node_count=80, area_side_m=242.0, seed=4)
    return deploy_uniform(config)


def converge(network, seconds=40.0):
    env = Environment()
    protocol = BeaconProtocol(env, network, BeaconConfig(interval_s=1.0))
    protocol.start()
    env.run(until=seconds)
    return protocol


def test_beaconing_converges_to_min_hop(beacon_network):
    protocol = converge(beacon_network)
    assert protocol.converged()
    tree = protocol.current_tree()
    reference = build_tree(beacon_network)
    for node_id in beacon_network.sensor_node_ids:
        assert tree.depth(node_id) == reference.depth(node_id)


def test_beacons_are_counted(beacon_network):
    protocol = converge(beacon_network, seconds=5.0)
    assert protocol.beacons_sent > 0


def test_current_tree_before_convergence_raises(beacon_network):
    env = Environment()
    protocol = BeaconProtocol(env, beacon_network)
    protocol.start()
    # No time has passed: only the base station has a route.
    with pytest.raises(RoutingError):
        protocol.current_tree()


def test_double_start_rejected(beacon_network):
    env = Environment()
    protocol = BeaconProtocol(env, beacon_network)
    protocol.start()
    with pytest.raises(RoutingError):
        protocol.start()


def test_invalidate_then_reconverge(beacon_network):
    protocol = converge(beacon_network)
    victim = beacon_network.sensor_node_ids[7]
    protocol.invalidate(victim)
    assert not protocol.converged()
    # Keep the same environment running; beacons repair the route.
    protocol.env.run(until=protocol.env.now + 10.0)
    assert protocol.converged()


def test_invalidate_base_station_is_noop(beacon_network):
    protocol = converge(beacon_network, seconds=3.0)
    protocol.invalidate(BASE_STATION_ID)
    assert protocol.state[BASE_STATION_ID].hops == 0


def test_dead_nodes_do_not_beacon():
    config = DeploymentConfig(node_count=60, area_side_m=210.0, seed=9)
    network = deploy_uniform(config)
    victim = network.sensor_node_ids[0]
    network.fail_node(victim)
    if not network.is_connected():
        pytest.skip("failure partitioned the tiny test network")
    protocol = converge(network)
    tree = protocol.current_tree()
    assert victim not in tree
