"""Quantizer tests (Fig. 7 semantics)."""

import pytest

from repro.codec.quantize import UNBOUNDED_SENTINEL, QuantizedDimension, Quantizer
from repro.data.sensors import SensorSpec, standard_catalog
from repro.errors import CodecError


def dim(name="t", lo=0.0, hi=10.0, res=1.0):
    return QuantizedDimension.from_spec(SensorSpec(name, "u", lo, hi, res))


class TestDimension:
    def test_size_rounds_up_to_power_of_two(self):
        # span 10, resolution 1 -> 11 raw cells -> 16.
        d = dim()
        assert d.size == 16 and d.bits == 4

    def test_paper_example_range_insensitivity(self):
        """§V-B: ranges of 600 and 900 values both need 10 bits."""
        d600 = dim(lo=0.0, hi=599.0, res=1.0)
        d900 = dim(lo=0.0, hi=899.0, res=1.0)
        assert d600.bits == d900.bits == 10

    def test_cell_of_basic(self):
        d = dim()
        assert d.cell_of(0.0) == 0
        assert d.cell_of(0.99) == 0
        assert d.cell_of(1.0) == 1
        assert d.cell_of(9.5) == 9

    def test_cell_of_clamps_out_of_range(self):
        d = dim()
        assert d.cell_of(-100.0) == 0
        assert d.cell_of(1e9) == d.size - 1

    def test_bounds_of_interior_cell(self):
        d = dim()
        lo, hi = d.bounds_of(3)
        assert lo == 3.0 and hi == 4.0

    def test_bounds_of_boundary_cells_widened(self):
        d = dim()
        lo0, hi0 = d.bounds_of(0)
        assert lo0 == -UNBOUNDED_SENTINEL and hi0 == 1.0
        lo_top, hi_top = d.bounds_of(d.size - 1)
        assert hi_top == UNBOUNDED_SENTINEL

    def test_bounds_of_invalid_cell(self):
        with pytest.raises(CodecError):
            dim().bounds_of(16)


class TestQuantizer:
    @pytest.fixture()
    def quantizer(self):
        return Quantizer.for_attributes(standard_catalog(1050.0), ["temp", "x", "y"])

    def test_dimension_order_is_sorted(self, quantizer):
        assert quantizer.attribute_names == ["temp", "x", "y"]

    def test_encode_decode_cells(self, quantizer):
        values = {"temp": 23.4, "x": 512.0, "y": 17.0}
        z = quantizer.encode(values)
        cells = quantizer.decode_cells(z)
        assert cells["temp"] == int((23.4 + 10.0) / 0.1)
        assert cells["x"] == 512 and cells["y"] == 17

    def test_cell_bounds_contain_value(self, quantizer):
        values = {"temp": 23.44, "x": 512.3, "y": 17.9}
        bounds = quantizer.cell_bounds(quantizer.encode(values))
        for name, value in values.items():
            assert bounds.lo[name] <= value <= bounds.hi[name]

    def test_representative_within_cell(self, quantizer):
        values = {"temp": 23.44, "x": 512.3, "y": 17.9}
        z = quantizer.encode(values)
        representative = quantizer.representative(z)
        assert quantizer.encode(representative) == z

    def test_quantization_is_idempotent_on_representatives(self, quantizer):
        values = {"temp": 30.0, "x": 100.0, "y": 200.0}
        z = quantizer.encode(values)
        rep = quantizer.representative(z)
        assert quantizer.encode(rep) == z

    def test_nearby_values_share_cells(self, quantizer):
        a = quantizer.encode({"temp": 23.41, "x": 10.2, "y": 10.2})
        b = quantizer.encode({"temp": 23.44, "x": 10.7, "y": 10.9})
        assert a == b

    def test_missing_attribute_raises(self, quantizer):
        with pytest.raises(CodecError, match="missing attribute"):
            quantizer.encode({"temp": 20.0})

    def test_total_bits(self, quantizer):
        assert quantizer.total_bits == sum(quantizer.bits_per_dim)
        # temp: 64/0.1=641 -> 1024 cells = 10 bits; x/y: 1051 -> 2048 = 11.
        assert quantizer.bits_per_dim == [10, 11, 11]

    def test_duplicate_dimensions_rejected(self):
        d = dim()
        with pytest.raises(CodecError):
            Quantizer([d, d])

    def test_empty_quantizer_rejected(self):
        with pytest.raises(CodecError):
            Quantizer([])

    def test_resolution_controls_bits(self):
        coarse = QuantizedDimension.from_spec(SensorSpec("t", "u", 0.0, 100.0, 10.0))
        fine = QuantizedDimension.from_spec(SensorSpec("t", "u", 0.0, 100.0, 0.1))
        assert coarse.bits < fine.bits
