"""Property suite for the spatial grid index and the adjacency drop-in.

Two layers of pinning:

* unit tests of :class:`repro.sim.spatial.SpatialGridIndex` itself —
  container protocol, swap-remove bookkeeping, cell handoff on moves,
  loud rejection of too-wide query radii;
* property tests that the grid-built adjacency of a live
  :class:`~repro.sim.network.Network` is **set-identical** to the dense
  O(n²) reference build (kept as ``Network._reference_adjacency``) across
  deployment shapes, adversarial geometries (boundary-hugging positions,
  duplicate positions, ranges straddling cell boundaries) and randomized
  crash/rejoin/move/link churn.
"""

import math
import random

import pytest

from repro.sim.network import (
    DeploymentConfig,
    deploy_clustered,
    deploy_grid,
    deploy_uniform,
)
from repro.sim.spatial import SpatialGridIndex, grid_cell


# ---------------------------------------------------------------------------
# SpatialGridIndex unit tests
# ---------------------------------------------------------------------------


def brute_force_within(points, x, y, limit2, exclude=None):
    return sorted(
        item
        for item, (px, py) in points.items()
        if item != exclude and (x - px) ** 2 + (y - py) ** 2 <= limit2
    )


def test_grid_cell_floors_coordinates():
    assert grid_cell(0.0, 0.0, 50.0) == (0, 0)
    assert grid_cell(49.999, 49.999, 50.0) == (0, 0)
    assert grid_cell(50.0, 0.0, 50.0) == (1, 0)
    assert grid_cell(-0.001, 0.0, 50.0) == (-1, 0)


def test_insert_query_remove_roundtrip():
    index = SpatialGridIndex(50.0)
    index.insert(1, 10.0, 10.0)
    index.insert(2, 30.0, 10.0)
    index.insert(3, 200.0, 200.0)
    assert len(index) == 3
    assert 2 in index and 4 not in index
    assert sorted(index.neighbours_within(10.0, 10.0, 50.0**2)) == [1, 2]
    assert index.neighbours_within(10.0, 10.0, 50.0**2, exclude=1) == [2]
    index.remove(2)
    assert sorted(index.neighbours_within(10.0, 10.0, 50.0**2)) == [1]
    assert index.position(3) == (200.0, 200.0)


def test_duplicate_insert_rejected():
    index = SpatialGridIndex(50.0)
    index.insert(1, 0.0, 0.0)
    with pytest.raises(ValueError, match="already indexed"):
        index.insert(1, 5.0, 5.0)


def test_nonpositive_cell_size_rejected():
    with pytest.raises(ValueError, match="positive"):
        SpatialGridIndex(0.0)
    with pytest.raises(ValueError, match="positive"):
        SpatialGridIndex(-3.0)


def test_query_radius_beyond_cell_size_rejected():
    index = SpatialGridIndex(50.0)
    index.insert(1, 0.0, 0.0)
    with pytest.raises(ValueError, match="3x3 scan window"):
        index.neighbours_within(0.0, 0.0, 50.001**2)
    # The boundary radius itself is fine.
    assert index.neighbours_within(0.0, 0.0, 50.0**2) == [1]


def test_remove_unknown_raises_discard_does_not():
    index = SpatialGridIndex(50.0)
    with pytest.raises(KeyError):
        index.remove(7)
    index.discard(7)  # no-op
    index.insert(7, 1.0, 1.0)
    index.discard(7)
    assert len(index) == 0 and 7 not in index


def test_swap_remove_keeps_columns_dense_and_positions_right():
    index = SpatialGridIndex(10.0)
    points = {i: (float(i), float(2 * i)) for i in range(20)}
    for item, (x, y) in points.items():
        index.insert(item, x, y)
    rng = random.Random(5)
    alive = dict(points)
    for item in rng.sample(sorted(points), 12):
        index.remove(item)
        del alive[item]
        # Every surviving item must still resolve to its own position
        # through the recycled slots.
        for survivor, (x, y) in alive.items():
            assert index.position(survivor) == (x, y)
    assert len(index) == len(alive)


def test_move_handoff_across_cells():
    index = SpatialGridIndex(50.0)
    index.insert(1, 10.0, 10.0)
    assert index.cell_of(1) == (0, 0)
    index.move(1, 120.0, 10.0)
    assert index.cell_of(1) == (2, 0)
    assert index.position(1) == (120.0, 10.0)
    # The old cell must be gone entirely (empty cells are deleted).
    assert dict(index.occupied_cells()) == {(2, 0): frozenset({1})}
    # Moving within a cell keeps the cell map untouched.
    index.move(1, 130.0, 20.0)
    assert dict(index.occupied_cells()) == {(2, 0): frozenset({1})}


def test_occupied_cells_sorted_and_complete():
    index = SpatialGridIndex(50.0)
    index.insert(1, 10.0, 10.0)
    index.insert(2, 20.0, 20.0)
    index.insert(3, 60.0, 10.0)
    cells = list(index.occupied_cells())
    assert cells == [((0, 0), frozenset({1, 2})), ((1, 0), frozenset({3}))]


def test_randomized_index_matches_brute_force():
    rng = random.Random(42)
    cell = 37.0
    index = SpatialGridIndex(cell)
    points = {}
    next_id = 0
    for step in range(600):
        op = rng.random()
        if op < 0.5 or not points:
            x, y = rng.uniform(-200, 200), rng.uniform(-200, 200)
            index.insert(next_id, x, y)
            points[next_id] = (x, y)
            next_id += 1
        elif op < 0.7:
            victim = rng.choice(sorted(points))
            index.remove(victim)
            del points[victim]
        else:
            mover = rng.choice(sorted(points))
            x, y = rng.uniform(-200, 200), rng.uniform(-200, 200)
            index.move(mover, x, y)
            points[mover] = (x, y)
        if step % 23 == 0:
            qx, qy = rng.uniform(-220, 220), rng.uniform(-220, 220)
            limit2 = rng.uniform(0.0, cell) ** 2
            assert sorted(index.neighbours_within(qx, qy, limit2)) == (
                brute_force_within(points, qx, qy, limit2)
            )


# ---------------------------------------------------------------------------
# Adjacency drop-in: grid build vs the dense reference
# ---------------------------------------------------------------------------


def assert_adjacency_matches_reference(network):
    """The load-bearing property: grid adjacency == dense O(n²) adjacency."""
    assert network._adjacency == network._reference_adjacency()


def _config(node_count, seed=0, **overrides):
    base = DeploymentConfig().scaled(node_count)
    return DeploymentConfig(
        node_count=base.node_count,
        area_side_m=overrides.pop("area_side_m", base.area_side_m),
        radio_range_m=overrides.pop("radio_range_m", base.radio_range_m),
        seed=seed,
        **overrides,
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_uniform_deployment_adjacency_matches_reference(seed):
    network = deploy_uniform(_config(150, seed=seed))
    assert_adjacency_matches_reference(network)


def test_grid_deployment_adjacency_matches_reference():
    # Pitch below range: many pairwise distances sit exactly on rational
    # multiples of the pitch, probing the <= boundary of the predicate.
    network = deploy_grid(_config(144))
    assert_adjacency_matches_reference(network)


def test_clustered_deployment_adjacency_matches_reference():
    network = deploy_clustered(_config(150), cluster_count=4)
    assert_adjacency_matches_reference(network)


def test_boundary_hugging_and_duplicate_positions():
    """Adversarial geometry: nodes on cell borders and coincident nodes."""
    from repro.sim.network import Network
    from repro.sim.node import SensorNode

    r = 50.0
    nodes = [SensorNode(0, 0.0, 0.0)]
    coords = []
    # Points exactly on cell boundaries (multiples of the radio range) and
    # just either side of them.
    for k, base in enumerate((0.0, r, 2 * r, 3 * r)):
        for eps in (-1e-9, 0.0, 1e-9):
            coords.append((base + eps, base))
    # Duplicate positions: three nodes stacked on one point, plus a pair
    # exactly one radio range apart (distance == range must connect).
    coords += [(25.0, 25.0)] * 3
    coords += [(100.0, 100.0), (100.0 + r, 100.0)]
    for i, (x, y) in enumerate(coords, start=1):
        nodes.append(SensorNode(i, x, y))
    network = Network(nodes, r)
    assert_adjacency_matches_reference(network)
    # The exact-range pair is connected under <=.
    n_pair = len(coords) - 1
    assert n_pair in network.neighbours(n_pair + 1)


def test_range_straddling_cell_boundaries():
    """Neighbours in diagonal cells are still found by the 3x3 scan."""
    from repro.sim.network import Network
    from repro.sim.node import SensorNode

    r = 50.0
    # Two nodes in diagonally adjacent cells, closer than the range; and
    # two in the same relative placement but farther than the range.
    nodes = [
        SensorNode(0, 0.0, 0.0),
        SensorNode(1, 49.0, 49.0),   # cell (0, 0)
        SensorNode(2, 51.0, 51.0),   # cell (1, 1) — distance ~2.8
        SensorNode(3, 149.0, 149.0),  # cell (2, 2)
        SensorNode(4, 151.0, 151.0),  # cell (3, 3) — distance ~2.8
        SensorNode(5, 199.5, 149.0),  # cell (3, 2) — 50.5 from node 3
    ]
    network = Network(nodes, r)
    assert_adjacency_matches_reference(network)
    assert 2 in network.neighbours(1)
    assert 4 in network.neighbours(3)
    assert 5 not in network.neighbours(3)  # just out of range


def test_adjacency_matches_reference_under_randomized_churn():
    """fail/revive/move/fail_link/restore_link keep the invariant."""
    network = deploy_uniform(_config(120, seed=3))
    rng = random.Random(7)
    side = network.config.area_side_m if hasattr(network, "config") else 500.0
    ids = [nid for nid in network.node_ids if nid != 0]
    failed = set()
    for step in range(300):
        op = rng.random()
        nid = rng.choice(ids)
        if op < 0.25:
            if len(failed) < len(ids) - 2:
                network.fail_node(nid)
                failed.add(nid)
        elif op < 0.5:
            if nid in failed:
                network.revive_node(
                    nid, x=rng.uniform(0, side), y=rng.uniform(0, side)
                )
                failed.discard(nid)
        elif op < 0.7:
            if nid not in failed:
                network.move_node(nid, rng.uniform(0, side), rng.uniform(0, side))
        elif op < 0.85:
            other = rng.choice([i for i in ids if i != nid])
            if nid not in failed and other not in failed:
                network.fail_link(nid, other)
        else:
            other = rng.choice([i for i in ids if i != nid])
            network.restore_link(nid, other)
        if step % 29 == 0:
            assert_adjacency_matches_reference(network)
    assert_adjacency_matches_reference(network)


def test_network_index_tracks_alive_nodes():
    network = deploy_uniform(_config(60, seed=1))
    alive = {nid for nid, node in network.nodes.items() if node.alive}
    assert len(network._index) == len(alive)
    network.fail_node(5)
    assert 5 not in network._index
    network.revive_node(5)
    assert 5 in network._index
    assert network._index.position(5) == (network.nodes[5].x, network.nodes[5].y)
