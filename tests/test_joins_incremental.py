"""Incremental continuous SENS-Join tests (the paper's §VIII future work)."""

import pytest

from repro.joins.incremental import IncrementalSensJoin
from repro.joins.runner import run_snapshot
from repro.joins.sensjoin import SensJoinConfig
from repro.query.parser import parse_query
from repro.query.query import JoinQuery, Once


@pytest.fixture(scope="module")
def setup(make_deployment):
    network, world = make_deployment(180, seed=17, drift_rate=0.0001)
    query = parse_query(
        "SELECT A.hum, B.hum FROM sensors A, sensors B "
        "WHERE A.temp - B.temp > 11.0 SAMPLE PERIOD 60"
    )
    return network, world, query


def snapshot_reference(network, world, query, algorithm, t):
    once = JoinQuery(query.select, query.relations, query.where, Once())
    return run_snapshot(network, world, once, algorithm, tree_seed=17, snapshot_time=t)


def test_every_round_exact(setup):
    """Each round's result equals the external join on the same snapshot."""
    network, world, query = setup
    executor = IncrementalSensJoin(network, world, query, tree_seed=17)
    for round_index in range(4):
        t = round_index * 60.0
        outcome = executor.run_round(t)
        reference = snapshot_reference(network, world, query, "external-join", t)
        assert outcome.result.signature() == reference.result.signature(), round_index


def test_steady_state_cheaper_than_first_round(setup):
    network, world, query = setup
    executor = IncrementalSensJoin(network, world, query, tree_seed=17)
    costs = [executor.run_round(r * 60.0).total_transmissions for r in range(4)]
    assert min(costs[1:]) < costs[0]


def test_collection_shrinks_under_slow_drift(setup):
    network, world, query = setup
    executor = IncrementalSensJoin(network, world, query, tree_seed=17)
    first = executor.run_round(0.0)
    second = executor.run_round(60.0)
    phase = "join-attribute-collection"
    assert second.per_phase_transmissions().get(phase, 0) < first.per_phase_transmissions()[phase]
    assert second.details["collection_unchanged_subtrees"] > 0


def test_filter_suppression_reported(setup):
    network, world, query = setup
    executor = IncrementalSensJoin(network, world, query, tree_seed=17)
    executor.run_round(0.0)
    second = executor.run_round(60.0)
    assert second.details["filter_suppressed"] >= 0
    assert "cache_bytes_max" in second.details
    assert second.details["cache_bytes_max"] > 0


def test_frozen_field_costs_almost_nothing_after_round0(make_deployment):
    network, world = make_deployment(120, seed=4)
    query = parse_query(
        "SELECT A.hum, B.hum FROM sensors A, sensors B "
        "WHERE A.temp - B.temp > 10.0 SAMPLE PERIOD 60"
    )
    executor = IncrementalSensJoin(network, world, query, tree_seed=4)
    first = executor.run_round(0.0)
    second = executor.run_round(60.0)
    # Nothing changed: no collection or filter traffic at all; only the
    # final phase (fresh result tuples) remains.
    phases = second.per_phase_transmissions()
    assert phases.get("join-attribute-collection", 0) == 0
    assert phases.get("filter-dissemination", 0) == 0
    assert second.total_transmissions < first.total_transmissions


def test_treecut_disabled_by_default(setup):
    network, world, query = setup
    executor = IncrementalSensJoin(network, world, query, tree_seed=17)
    assert executor.config.dmax_bytes == 0
    executor.run_round(0.0)
    assert not any(cache.exited for cache in executor.caches.values())


def test_explicit_treecut_still_exact(setup):
    network, world, query = setup
    executor = IncrementalSensJoin(
        network, world, query, config=SensJoinConfig(), tree_seed=17
    )
    outcome = executor.run_round(0.0)
    reference = snapshot_reference(network, world, query, "external-join", 0.0)
    assert outcome.result.signature() == reference.result.signature()
    assert any(cache.exited for cache in executor.caches.values())


def test_non_quadtree_representation_rejected(setup):
    network, world, query = setup
    with pytest.raises(ValueError, match="quadtree"):
        IncrementalSensJoin(
            network, world, query, config=SensJoinConfig(representation="raw")
        )


def test_membership_changes_handled(make_deployment):
    """Selection predicates over drifting readings flip node flags between
    rounds; the deltas must track that (a formerly-contributing node's point
    disappears)."""
    network, world = make_deployment(120, seed=4, drift_rate=0.005)
    query = parse_query(
        "SELECT A.hum, B.hum FROM sensors A, sensors B "
        "WHERE A.temp > 22.0 AND A.temp - B.temp > 2.0 SAMPLE PERIOD 60"
    )
    executor = IncrementalSensJoin(network, world, query, tree_seed=4)
    for round_index in range(3):
        t = round_index * 60.0
        outcome = executor.run_round(t)
        once = JoinQuery(query.select, query.relations, query.where, Once())
        reference = run_snapshot(
            network, world, once, "external-join", tree_seed=4, snapshot_time=t
        )
        assert outcome.result.signature() == reference.result.signature(), round_index
