"""Deployment and connectivity tests."""

import pytest

from repro.errors import NetworkError
from repro.sim.network import (
    DeploymentConfig,
    LinkQuality,
    Network,
    deploy_clustered,
    deploy_grid,
    deploy_uniform,
)
from repro.sim.node import BASE_STATION_ID, SensorNode


def test_uniform_deployment_connected(small_network):
    assert small_network.is_connected()
    assert len(small_network.sensor_node_ids) == 200
    assert BASE_STATION_ID in small_network.nodes


def test_neighbourhood_is_symmetric(small_network):
    for node_id in small_network.node_ids:
        for neighbour in small_network.neighbours(node_id):
            assert node_id in small_network.neighbours(neighbour)


def test_neighbours_within_radio_range(small_network):
    for node_id in small_network.node_ids:
        node = small_network.nodes[node_id]
        for neighbour in small_network.neighbours(node_id):
            assert node.distance_to(small_network.nodes[neighbour]) <= 50.0 + 1e-9


def test_average_degree_near_paper_typical(small_network):
    # §IV-B: typical neighbourhood sizes are "around 6 to 15".
    assert 5.0 <= small_network.average_degree() <= 16.0


def test_duplicate_ids_rejected():
    nodes = [SensorNode(0, 0, 0), SensorNode(1, 1, 1), SensorNode(1, 2, 2)]
    with pytest.raises(NetworkError):
        Network(nodes, radio_range_m=50.0)


def test_missing_base_station_rejected():
    nodes = [SensorNode(1, 1, 1), SensorNode(2, 2, 2)]
    with pytest.raises(NetworkError):
        Network(nodes, radio_range_m=50.0)


def test_grid_deployment_deterministic():
    config = DeploymentConfig(node_count=25, area_side_m=200.0, seed=3)
    a = deploy_grid(config)
    b = deploy_grid(config)
    assert [a.nodes[i].position for i in a.node_ids] == [
        b.nodes[i].position for i in b.node_ids
    ]


def test_grid_pitch_exceeding_range_rejected():
    config = DeploymentConfig(node_count=9, area_side_m=1000.0, radio_range_m=50.0)
    with pytest.raises(NetworkError, match="pitch"):
        deploy_grid(config)


def test_clustered_deployment_connects_with_overlapping_clusters():
    config = DeploymentConfig(node_count=120, area_side_m=300.0, seed=5)
    network = deploy_clustered(config, cluster_count=3, cluster_std_m=80.0)
    assert network.is_connected()


def test_fail_node_removes_from_graph(small_network):
    victim = small_network.sensor_node_ids[5]
    neighbours = set(small_network.neighbours(victim))
    small_network.fail_node(victim)
    assert not small_network.nodes[victim].alive
    for neighbour in neighbours:
        assert victim not in small_network.neighbours(neighbour)
    with pytest.raises(NetworkError):
        small_network.neighbours(victim)


def test_base_station_cannot_fail(small_network):
    with pytest.raises(NetworkError):
        small_network.fail_node(BASE_STATION_ID)


def test_fail_and_restore_link(small_network):
    node = small_network.sensor_node_ids[0]
    neighbour = next(iter(small_network.neighbours(node)))
    small_network.fail_link(node, neighbour)
    assert neighbour not in small_network.neighbours(node)
    assert node not in small_network.neighbours(neighbour)
    small_network.restore_link(node, neighbour)
    assert neighbour in small_network.neighbours(node)


def test_fail_node_is_idempotent(small_network):
    victim = small_network.sensor_node_ids[5]
    small_network.fail_node(victim)
    energy_before = small_network.total_energy()
    small_network.fail_node(victim)  # second call: a no-op, not an error
    assert not small_network.nodes[victim].alive
    assert small_network.total_energy() == energy_before


def test_restore_link_rejects_unknown_and_self(small_network):
    with pytest.raises(NetworkError, match="unknown node"):
        small_network.restore_link(1, 99999)
    with pytest.raises(NetworkError, match="unknown node"):
        small_network.restore_link(99999, 1)
    with pytest.raises(NetworkError):
        small_network.restore_link(5, 5)


def test_restore_link_to_dead_node_does_not_resurrect(small_network):
    node = small_network.sensor_node_ids[0]
    neighbour = sorted(small_network.neighbours(node))[0]
    small_network.fail_link(node, neighbour)
    small_network.fail_node(neighbour)
    small_network.restore_link(node, neighbour)
    # The failed-link record is cleared, but a dead endpoint stays
    # unreachable: restoring the link must not revive connectivity.
    assert neighbour not in small_network.neighbours(node)
    assert not small_network.link_up(node, neighbour)


def test_link_up_tracks_adjacency(small_network):
    node = small_network.sensor_node_ids[0]
    neighbour = sorted(small_network.neighbours(node))[0]
    assert small_network.link_up(node, neighbour)
    assert small_network.link_up(neighbour, node)
    small_network.fail_link(node, neighbour)
    assert not small_network.link_up(node, neighbour)
    assert not small_network.link_up(neighbour, node)
    assert not small_network.link_up(node, 99999)


def test_total_energy_sums_ledgers(small_network):
    assert small_network.total_energy() == 0.0
    a, b = small_network.sensor_node_ids[:2]
    small_network.channel.unicast(a, b, 10, "x")
    assert small_network.total_energy() == pytest.approx(
        sum(n.ledger.total_energy for n in small_network.nodes.values())
    )
    assert small_network.total_energy() > 0.0


def test_scaled_config_keeps_density():
    base = DeploymentConfig()
    scaled = base.scaled(600)
    base_density = base.node_count / base.area_side_m**2
    scaled_density = scaled.node_count / scaled.area_side_m**2
    assert scaled_density == pytest.approx(base_density, rel=1e-6)


def test_impossible_density_raises():
    config = DeploymentConfig(node_count=10, area_side_m=5000.0, radio_range_m=50.0)
    with pytest.raises(NetworkError):
        deploy_uniform(config, max_attempts=2)


def test_reset_accounting_clears_ledgers_and_stats(small_network):
    channel = small_network.channel
    a, b = small_network.sensor_node_ids[:2]
    channel.unicast(a, BASE_STATION_ID, 10, "x") if BASE_STATION_ID in small_network.neighbours(a) else None
    channel.unicast(a, b, 10, "x")
    assert small_network.stats.total_tx_packets() >= 1
    small_network.reset_accounting()
    assert small_network.stats.total_tx_packets() == 0
    assert small_network.nodes[a].ledger.total_energy == 0.0
    # The channel must write into the fresh collector.
    channel.unicast(a, b, 10, "y")
    assert small_network.stats.total_tx_packets() == 1


def test_config_validation():
    with pytest.raises(ValueError):
        DeploymentConfig(node_count=1)
    with pytest.raises(ValueError):
        DeploymentConfig(area_side_m=-1.0)


def test_node_helpers():
    node = SensorNode(3, 3.0, 4.0, relations=frozenset({"sensors"}))
    assert node.position == (3.0, 4.0)
    assert node.distance_to(SensorNode(4, 0.0, 0.0)) == pytest.approx(5.0)
    assert node.belongs_to("sensors") and not node.belongs_to("other")
    assert not node.is_base_station
    assert SensorNode(BASE_STATION_ID, 0, 0).is_base_station


def test_fail_link_rejects_unknown_nodes(small_network):
    with pytest.raises(NetworkError, match="unknown node"):
        small_network.fail_link(1, 99999)
    with pytest.raises(NetworkError, match="unknown node"):
        small_network.fail_link(99999, 1)
    # A rejected call must not leave a stale entry behind.
    assert frozenset((1, 99999)) not in small_network._failed_links


def test_fail_link_rejects_self_link(small_network):
    with pytest.raises(NetworkError):
        small_network.fail_link(5, 5)


def test_link_quality_validation():
    with pytest.raises(ValueError):
        LinkQuality(loss_rate=1.0)
    with pytest.raises(ValueError):
        LinkQuality(loss_rate=-0.1)
    with pytest.raises(ValueError):
        LinkQuality(loss_rate=0.1, distance_exponent=-1.0)


def test_link_quality_distance_shape():
    quality = LinkQuality(loss_rate=0.3, distance_exponent=2.0)
    assert quality.enabled
    assert quality.loss_probability(0.0, 50.0) == 0.0
    assert quality.loss_probability(25.0, 50.0) == pytest.approx(0.3 * 0.25)
    assert quality.loss_probability(50.0, 50.0) == pytest.approx(0.3)
    # Distances beyond the range (no such links exist) are clamped.
    assert quality.loss_probability(80.0, 50.0) == pytest.approx(0.3)
    assert quality.prr(50.0, 50.0) == pytest.approx(0.7)


def test_disabled_link_quality_is_normalised_away():
    config = DeploymentConfig(node_count=60, area_side_m=210.0, seed=2)
    network = deploy_uniform(config)
    assert network.link_quality is None
    assert network.channel.loss_probability is None
    assert network.link_loss_probability(1, 2) == 0.0
    assert network.link_etx(1, 2) == 1.0


def test_lossy_deployment_wires_the_channel():
    config = DeploymentConfig(node_count=60, area_side_m=210.0, seed=2, loss_rate=0.2)
    network = deploy_uniform(config)
    assert network.link_quality is not None
    assert network.link_quality.loss_rate == 0.2
    assert network.channel.loss_probability is not None
    node = network.sensor_node_ids[0]
    neighbour = next(iter(network.neighbours(node)))
    p_link = network.link_loss_probability(node, neighbour)
    assert 0.0 <= p_link < 0.2  # links are shorter than the range
    assert network.link_etx(node, neighbour) == pytest.approx(1.0 / (1.0 - p_link))
    # Same positions as the lossless deployment: loss only affects links.
    lossless = deploy_uniform(DeploymentConfig(node_count=60, area_side_m=210.0, seed=2))
    assert all(
        network.nodes[n].x == lossless.nodes[n].x for n in network.node_ids
    )


def test_config_loss_rate_validated_and_scaled():
    with pytest.raises(ValueError):
        DeploymentConfig(loss_rate=1.5)
    config = DeploymentConfig(node_count=600, loss_rate=0.25)
    assert config.scaled(1200).loss_rate == 0.25


def test_reset_accounting_reseeds_arq():
    config = DeploymentConfig(node_count=60, area_side_m=210.0, seed=2, loss_rate=0.3)
    network = deploy_uniform(config)
    node = network.sensor_node_ids[0]
    neighbour = next(iter(network.neighbours(node)))
    network.reset_accounting()
    for _ in range(50):
        network.channel.unicast(node, neighbour, 480, "phase")
    first = network.stats.total_retx_packets()
    network.reset_accounting()
    for _ in range(50):
        network.channel.unicast(node, neighbour, 480, "phase")
    assert network.stats.total_retx_packets() == first


# ---------------------------------------------------------------------------
# Scale regressions: slotted node state and per-node memory ceiling
# ---------------------------------------------------------------------------


def test_sensor_node_and_ledger_are_slotted():
    """The per-node objects must stay ``__slots__``-backed (no ``__dict__``).

    A stray attribute assignment (or a dataclass edit dropping
    ``slots=True``) re-grows every node by a dict, which is exactly what
    caps deployments at a few thousand nodes.  ``sys.getsizeof`` bounds are
    generous — the point is catching a dict reappearing (+64 bytes or
    more), not byte-exact layout.
    """
    import sys

    node = SensorNode(1, 0.0, 0.0)
    assert not hasattr(node, "__dict__")
    assert not hasattr(node.ledger, "__dict__")
    with pytest.raises(AttributeError):
        node.stray_attribute = 1
    assert sys.getsizeof(node) <= 120
    assert sys.getsizeof(node.ledger) <= 144


def test_deployment_memory_per_node_ceiling():
    """tracemalloc regression gate: a 5k-node deployment stays lean.

    Measured ~4.3 KB/node retained (the adjacency sets dominate at the
    paper's ~10.5 mean degree); the ceiling has ~40% headroom.  Breaking
    it means a per-node structure regressed to boxed/dict storage — the
    dense O(n²) matrix this repo removed would blow past it instantly.
    """
    import tracemalloc

    node_count = 5000
    base = DeploymentConfig().scaled(node_count)
    config = DeploymentConfig(
        node_count=base.node_count,
        area_side_m=base.area_side_m,
        radio_range_m=base.radio_range_m,
        seed=0,
    )
    tracemalloc.start()
    try:
        network = deploy_uniform(config)
        current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert len(network.sensor_node_ids) == node_count
    per_node_current = current / node_count
    per_node_peak = peak / node_count
    assert per_node_current <= 6000, (
        f"retained {per_node_current:.0f} B/node (ceiling 6000)"
    )
    assert per_node_peak <= 8000, (
        f"peak {per_node_peak:.0f} B/node (ceiling 8000)"
    )
