"""Specialised-baseline tests (semi-join broadcast, mediated join)."""

import pytest

from repro.data.relations import SensorWorld
from repro.joins.external import ExternalJoin
from repro.joins.mediated import MediatedJoin
from repro.joins.runner import run_snapshot
from repro.joins.semijoin import SemiJoinBroadcast
from repro.query.parser import parse_query
from repro.sim.network import DeploymentConfig, deploy_clustered


def test_semijoin_result_matches_external(small_network, small_world, tail_query):
    query = tail_query(1.5)
    external = run_snapshot(small_network, small_world, query, ExternalJoin(), tree_seed=11)
    semijoin = run_snapshot(
        small_network, small_world, query, SemiJoinBroadcast(), tree_seed=11
    )
    assert external.result.signature() == semijoin.result.signature()


def test_mediated_result_matches_external(small_network, small_world, tail_query):
    query = tail_query(1.5)
    external = run_snapshot(small_network, small_world, query, ExternalJoin(), tree_seed=11)
    mediated = run_snapshot(small_network, small_world, query, MediatedJoin(), tree_seed=11)
    assert external.result.signature() == mediated.result.signature()


def test_semijoin_loses_on_general_self_join(small_network, small_world, tail_query):
    """On the paper's general workloads the specialised methods lose to the
    external join (§VI: 'the external join outperforms the specialized join
    methods ... in each of our experiments')."""
    query = tail_query(1.5)
    external = run_snapshot(small_network, small_world, query, ExternalJoin(), tree_seed=11)
    semijoin = run_snapshot(
        small_network, small_world, query, SemiJoinBroadcast(), tree_seed=11
    )
    assert semijoin.total_transmissions > external.total_transmissions


def test_semijoin_rejects_three_relations(small_network, small_world):
    query = parse_query(
        "SELECT A.temp FROM sensors A, sensors B, sensors C "
        "WHERE A.temp - B.temp > 1 AND B.temp - C.temp > 1 ONCE"
    )
    with pytest.raises(ValueError):
        run_snapshot(small_network, small_world, query, SemiJoinBroadcast(), tree_seed=11)


def test_semijoin_picks_smaller_relation_as_filter(small_network):
    world = SensorWorld.two_relations(small_network, split=0.15, seed=5)
    query = parse_query(
        "SELECT A.hum, B.hum FROM rel_a A, rel_b B WHERE A.temp - B.temp > 0.2 ONCE"
    )
    outcome = run_snapshot(small_network, world, query, SemiJoinBroadcast(), tree_seed=11)
    filter_tuples = outcome.details["filter_relation_tuples"]
    assert filter_tuples == len(world.members("rel_a"))


def test_mediated_details_report_mediator(small_network, small_world, tail_query):
    outcome = run_snapshot(
        small_network, small_world, tail_query(1.5), MediatedJoin(), tree_seed=11
    )
    mediator = int(outcome.details["mediator"])
    assert mediator in small_network.sensor_node_ids
    assert outcome.details["mediator_to_bs_hops"] >= 1


def test_mediated_empty_snapshot(small_network, small_world):
    query = parse_query(
        "SELECT A.hum FROM sensors A, sensors B "
        "WHERE A.temp > 9999 AND B.temp > 9999 AND A.temp - B.temp > 1 ONCE"
    )
    outcome = run_snapshot(small_network, small_world, query, MediatedJoin(), tree_seed=11)
    assert outcome.result.match_count == 0
    assert outcome.total_transmissions == 0
