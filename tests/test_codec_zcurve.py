"""Z-order encoding tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codec.zcurve import deinterleave, interleave, level_widths, total_bits
from repro.errors import CodecError


def test_figure6_example():
    """Fig. 6c: 2-bit 2D Z-ordering gives the familiar 0..15 pattern."""
    # The figure's grid (x = column, y = row, both 2 bits):
    # row 0: 0 1 4 5 / row 1: 2 3 6 7 / row 2: 8 9 12 13 / row 3: 10 11 14 15
    expected = {
        (0, 0): 0, (1, 0): 1, (0, 1): 2, (1, 1): 3,
        (2, 0): 4, (3, 0): 5, (2, 1): 6, (3, 1): 7,
        (0, 2): 8, (1, 2): 9, (0, 3): 10, (1, 3): 11,
        (2, 2): 12, (3, 2): 13, (2, 3): 14, (3, 3): 15,
    }
    # Dimension order [y, x]: the row bit is more significant per round,
    # matching the figure's numbering.
    for (x, y), z in expected.items():
        assert interleave([y, x], [2, 2]) == z, (x, y)


def test_locality_of_z_order():
    """Nearby points get nearby Z-numbers more often than distant ones."""
    near = abs(interleave([1, 1], [4, 4]) - interleave([1, 2], [4, 4]))
    far = abs(interleave([1, 1], [4, 4]) - interleave([14, 14], [4, 4]))
    assert near < far


def test_uneven_dimensions():
    # 3 bits for x, 1 bit for y: y contributes only in round 0.
    assert level_widths([3, 1]) == [2, 1, 1]
    z = interleave([0b101, 0b1], [3, 1])
    # Round 0: x2=1, y0=1 -> '11'; round 1: x1=0 -> '0'; round 2: x0=1 -> '1'.
    assert z == 0b1101
    assert deinterleave(z, [3, 1]) == [0b101, 0b1]


def test_zero_width_dimension_allowed():
    # A dimension with one cell (0 bits) never contributes.
    assert total_bits([2, 0]) == 2
    assert interleave([3, 0], [2, 0]) == 3
    assert deinterleave(3, [2, 0]) == [3, 0]


def test_validation():
    with pytest.raises(CodecError):
        interleave([1], [2, 2])  # arity mismatch
    with pytest.raises(CodecError):
        interleave([4], [2])  # coordinate overflow
    with pytest.raises(CodecError):
        deinterleave(16, [2, 2])  # z overflow
    with pytest.raises(CodecError):
        level_widths([])
    with pytest.raises(CodecError):
        total_bits([0, 0])
    with pytest.raises(CodecError):
        interleave([0], [-1])


@given(st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=5).flatmap(
    lambda widths: st.tuples(
        st.just(widths),
        st.tuples(*[st.integers(min_value=0, max_value=(1 << w) - 1) for w in widths]),
    )
))
def test_roundtrip_random(case):
    widths, coords = case
    if sum(widths) == 0:
        return
    z = interleave(list(coords), widths)
    assert deinterleave(z, widths) == list(coords)
    assert 0 <= z < (1 << sum(widths))


@given(st.integers(min_value=0, max_value=2**20 - 1))
def test_roundtrip_from_z(z):
    widths = [7, 6, 7]
    coords = deinterleave(z, widths)
    assert interleave(coords, widths) == z


def test_z_number_prefix_is_quadrant():
    """The Z-number's bit prefix identifies the quadtree quadrant (§V-C)."""
    widths = [3, 3]
    # Points in the same top-level quadrant share their first 2 bits.
    z1 = interleave([0, 0], widths)
    z2 = interleave([3, 3], widths)  # still in the low half of both dims
    z3 = interleave([4, 4], widths)  # high half of both dims
    assert z1 >> 4 == z2 >> 4
    assert z1 >> 4 != z3 >> 4
