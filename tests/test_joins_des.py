"""Equivalence of the DES reference implementation and the fast path.

Two independently written implementations of the same protocol must agree
on everything observable: per-phase transmission counts, per-node loads,
and the join result.  Any divergence exposes a bug in one of them.
"""

import pytest

from repro.joins.des_sensjoin import DesSensJoin
from repro.joins.runner import run_snapshot
from repro.joins.sensjoin import SensJoin


def run_both(network, world, query):
    fast = run_snapshot(network, world, query, SensJoin(), tree_seed=11)
    des = run_snapshot(network, world, query, DesSensJoin(), tree_seed=11)
    return fast, des


THRESHOLDS = [0.5, 1.5, 3.0, 99.0]


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_identical_results(small_network, small_world, tail_query, threshold):
    fast, des = run_both(small_network, small_world, tail_query(threshold))
    assert fast.result.signature() == des.result.signature()


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_identical_phase_costs(small_network, small_world, tail_query, threshold):
    fast, des = run_both(small_network, small_world, tail_query(threshold))
    assert fast.per_phase_transmissions() == des.per_phase_transmissions()
    assert fast.total_bytes == des.total_bytes


def test_identical_per_node_loads(small_network, small_world, tail_query):
    fast, des = run_both(small_network, small_world, tail_query(1.5))
    for node_id in small_network.node_ids:
        assert fast.stats.node_tx_packets(node_id) == des.stats.node_tx_packets(node_id), node_id
        assert fast.stats.node_rx_packets(node_id) == des.stats.node_rx_packets(node_id), node_id


def test_identical_filter_size(small_network, small_world, tail_query):
    fast, des = run_both(small_network, small_world, tail_query(1.5))
    assert fast.details["filter_points"] == des.details["filter_points"]


def test_response_times_consistent(small_network, small_world, tail_query):
    """Both models add 3 epoch slots; serialisation critical paths agree up
    to the pruned-branch scheduling detail (see the module docstring)."""
    fast, des = run_both(small_network, small_world, tail_query(1.5))
    assert des.response_time_s == pytest.approx(fast.response_time_s, rel=0.15)


def test_q2_style_equivalence(small_network, small_world, q2_style):
    fast, des = run_both(small_network, small_world, q2_style)
    assert fast.result.signature() == des.result.signature()
    assert fast.per_phase_transmissions() == des.per_phase_transmissions()
