"""Interval arithmetic and TriBool tests, including soundness properties."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.query.intervals import Interval, TriBool

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@st.composite
def interval_with_point(draw):
    """An interval plus a value guaranteed inside it."""
    a = draw(finite)
    b = draw(finite)
    lo, hi = min(a, b), max(a, b)
    t = draw(st.floats(min_value=0.0, max_value=1.0))
    # Clamp: rounding in lo + t*(hi - lo) can land just outside [lo, hi]
    # (e.g. lo=-1.0, hi=-3e-105, t=1.0 gives 0.0).
    point = min(max(lo + t * (hi - lo), lo), hi)
    return Interval(lo, hi), point


class TestTriBool:
    def test_and_truth_table(self):
        T, F, M = TriBool.TRUE, TriBool.FALSE, TriBool.MAYBE
        assert (T & T) is T
        assert (T & M) is M
        assert (M & M) is M
        assert (F & T) is F
        assert (F & M) is F

    def test_or_truth_table(self):
        T, F, M = TriBool.TRUE, TriBool.FALSE, TriBool.MAYBE
        assert (T | F) is T
        assert (M | F) is M
        assert (F | F) is F
        assert (M | T) is T

    def test_negate(self):
        assert TriBool.TRUE.negate() is TriBool.FALSE
        assert TriBool.FALSE.negate() is TriBool.TRUE
        assert TriBool.MAYBE.negate() is TriBool.MAYBE

    def test_possible_and_definite(self):
        assert TriBool.TRUE.possible and TriBool.TRUE.definite
        assert TriBool.MAYBE.possible and not TriBool.MAYBE.definite
        assert not TriBool.FALSE.possible

    def test_of(self):
        assert TriBool.of(True) is TriBool.TRUE
        assert TriBool.of(False) is TriBool.FALSE


class TestIntervalBasics:
    def test_empty_interval_rejected(self):
        with pytest.raises(EvaluationError):
            Interval(2.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(EvaluationError):
            Interval(float("nan"), 1.0)

    def test_point_helpers(self):
        p = Interval.point(3.0)
        assert p.is_point and p.width == 0.0 and p.contains(3.0)

    def test_arithmetic_examples(self):
        a, b = Interval(1, 2), Interval(3, 5)
        assert a + b == Interval(4, 7)
        assert a - b == Interval(-4, -1)
        assert -a == Interval(-2, -1)
        assert a * b == Interval(3, 10)
        assert Interval(-2, 3) * Interval(-1, 4) == Interval(-8, 12)

    def test_division_avoiding_zero(self):
        assert Interval(1, 2) / Interval(2, 4) == Interval(0.25, 1.0)

    def test_division_across_zero_is_whole_line(self):
        result = Interval(1, 2) / Interval(-1, 1)
        assert result.lo == -math.inf and result.hi == math.inf

    def test_abs(self):
        assert Interval(2, 3).abs() == Interval(2, 3)
        assert Interval(-3, -2).abs() == Interval(2, 3)
        assert Interval(-2, 3).abs() == Interval(0, 3)

    def test_square_tighter_than_mul(self):
        spanning = Interval(-2, 3)
        assert spanning.square() == Interval(0, 9)
        assert spanning * spanning == Interval(-6, 9)  # naive product is looser

    def test_sqrt_clamps_negative(self):
        assert Interval(-4, 9).sqrt() == Interval(0, 3)

    def test_hull_min_max(self):
        a, b = Interval(0, 2), Interval(1, 5)
        assert a.hull(b) == Interval(0, 5)
        assert a.min_with(b) == Interval(0, 2)
        assert a.max_with(b) == Interval(1, 5)

    def test_distance(self):
        d = Interval.distance(
            Interval.point(0), Interval.point(0), Interval.point(3), Interval.point(4)
        )
        assert d == Interval(5, 5)


class TestComparisons:
    def test_lt_cases(self):
        assert Interval(0, 1).lt(Interval(2, 3)) is TriBool.TRUE
        assert Interval(2, 3).lt(Interval(0, 1)) is TriBool.FALSE
        assert Interval(0, 2).lt(Interval(1, 3)) is TriBool.MAYBE

    def test_le_boundary(self):
        assert Interval(0, 1).le(Interval(1, 2)) is TriBool.TRUE
        assert Interval(1.5, 2).le(Interval(0, 1)) is TriBool.FALSE

    def test_eq_cases(self):
        assert Interval.point(2).eq(Interval.point(2)) is TriBool.TRUE
        assert Interval(0, 1).eq(Interval(2, 3)) is TriBool.FALSE
        assert Interval(0, 2).eq(Interval(1, 3)) is TriBool.MAYBE

    def test_ne_is_negated_eq(self):
        assert Interval.point(2).ne(Interval.point(2)) is TriBool.FALSE
        assert Interval(0, 1).ne(Interval(2, 3)) is TriBool.TRUE


class TestSoundness:
    """Interval results must contain every pointwise result."""

    @given(interval_with_point(), interval_with_point())
    def test_add_sub_mul_contain_pointwise(self, ap, bp):
        (A, a), (B, b) = ap, bp
        assert (A + B).contains(a + b)
        assert (A - B).contains(a - b)
        product = A * B
        # Multiplication of large floats can round; allow tiny tolerance.
        assert product.lo - abs(product.lo) * 1e-12 - 1e-9 <= a * b
        assert a * b <= product.hi + abs(product.hi) * 1e-12 + 1e-9

    @given(interval_with_point())
    def test_abs_neg_contain_pointwise(self, ap):
        A, a = ap
        assert A.abs().contains(abs(a))
        assert (-A).contains(-a)

    @given(interval_with_point(), interval_with_point())
    def test_comparisons_never_false_when_true(self, ap, bp):
        (A, a), (B, b) = ap, bp
        if a < b:
            assert A.lt(B).possible
        if a <= b:
            assert A.le(B).possible
        if a > b:
            assert A.gt(B).possible

    @given(interval_with_point(), interval_with_point())
    def test_definite_implies_pointwise(self, ap, bp):
        (A, a), (B, b) = ap, bp
        if A.lt(B).definite:
            assert a < b
        if A.le(B).definite:
            assert a <= b

    @given(
        interval_with_point(), interval_with_point(),
        interval_with_point(), interval_with_point(),
    )
    def test_distance_contains_pointwise(self, x1p, y1p, x2p, y2p):
        (X1, x1), (Y1, y1), (X2, x2), (Y2, y2) = x1p, y1p, x2p, y2p
        exact = math.hypot(x1 - x2, y1 - y2)
        bound = Interval.distance(X1, Y1, X2, Y2)
        assert bound.lo - 1e-6 <= exact <= bound.hi + max(1e-6, bound.hi * 1e-9)
