"""Facade (SensorNetworkDB) tests."""

import pytest

from repro import QueryReport, SensorNetworkDB
from repro.errors import BindingError, QueryError


@pytest.fixture(scope="module")
def db():
    return SensorNetworkDB(node_count=150, seed=7)


def test_repr_and_tree(db):
    assert "150 nodes" in repr(db)
    assert db.tree.height >= 1


def test_execute_returns_report(db):
    report = db.execute(
        "SELECT A.hum, B.hum FROM sensors A, sensors B WHERE A.temp - B.temp > 1.0 ONCE"
    )
    assert isinstance(report, QueryReport)
    assert report.algorithm == "sens-join"
    assert report.transmissions > 0
    assert "sens-join" in report.summary()


def test_execute_algorithms_agree(db):
    sql = "SELECT A.hum, B.hum FROM sensors A, sensors B WHERE A.temp - B.temp > 1.0 ONCE"
    sens = db.execute(sql)
    external = db.execute(sql, algorithm="external-join")
    assert sens.outcome.result.signature() == external.outcome.result.signature()


def test_execute_rejects_sample_period(db):
    with pytest.raises(QueryError, match="execute_stream"):
        db.execute(
            "SELECT A.temp FROM sensors A, sensors B "
            "WHERE A.temp - B.temp > 1 SAMPLE PERIOD 5"
        )


def test_execute_stream(db):
    reports = db.execute_stream(
        "SELECT A.temp, B.temp FROM sensors A, sensors B "
        "WHERE A.temp - B.temp > 1 SAMPLE PERIOD 30",
        executions=2,
    )
    assert len(reports) == 2


def test_execute_stream_rejects_once(db):
    with pytest.raises(QueryError):
        db.execute_stream(
            "SELECT A.temp FROM sensors A, sensors B WHERE A.temp - B.temp > 1 ONCE"
        )


def test_parse_validates_attributes(db):
    with pytest.raises(BindingError):
        db.parse("SELECT A.windspeed FROM sensors A, sensors B WHERE A.temp > B.temp ONCE")


def test_explain_mentions_plan(db):
    text = db.explain(
        "SELECT A.hum, B.hum FROM sensors A, sensors B WHERE A.temp - B.temp > 1 ONCE"
    )
    assert "join attributes" in text
    assert "Treecut" in text
    assert "quantizer" in text.lower()


def test_custom_area_and_packets():
    db = SensorNetworkDB(node_count=100, area_side_m=300.0, seed=3, max_packet_bytes=124)
    assert db.network.packet_format.max_packet_bytes == 124


def test_network_world_must_come_together(small_network):
    with pytest.raises(ValueError):
        SensorNetworkDB(network=small_network, world=None)


def test_wrap_existing_network(small_network, small_world):
    db = SensorNetworkDB(network=small_network, world=small_world, seed=11)
    report = db.execute(
        "SELECT A.hum, B.hum FROM sensors A, sensors B WHERE A.temp - B.temp > 2.0 ONCE"
    )
    assert report.transmissions > 0
