"""Synthetic field generator tests."""

import numpy as np
import pytest

from repro.data.fields import (
    ConstantField,
    GaussianProcessField,
    GradientField,
    PatchyField,
    UncorrelatedField,
    empirical_correlation,
)


def test_gp_field_deterministic_per_seed():
    a = GaussianProcessField(20.0, 3.0, 100.0, seed=1)
    b = GaussianProcessField(20.0, 3.0, 100.0, seed=1)
    c = GaussianProcessField(20.0, 3.0, 100.0, seed=2)
    assert a.value(10, 20) == b.value(10, 20)
    assert a.value(10, 20) != c.value(10, 20)


def test_gp_field_scalar_matches_vectorised():
    field = GaussianProcessField(20.0, 3.0, 100.0, seed=1)
    xs = np.array([1.0, 50.0, 200.0])
    ys = np.array([2.0, 60.0, 300.0])
    sampled = field.sample(xs, ys)
    for i in range(3):
        assert field.value(xs[i], ys[i]) == pytest.approx(sampled[i])


def test_gp_field_statistics_roughly_match():
    field = GaussianProcessField(22.0, 4.0, 50.0, seed=3)
    rng = np.random.default_rng(0)
    xs = rng.uniform(0, 2000, 4000)
    ys = rng.uniform(0, 2000, 4000)
    values = field.sample(xs, ys)
    assert abs(values.mean() - 22.0) < 0.8
    assert 2.5 < values.std() < 5.5


def test_gp_spatial_correlation_decays_with_distance():
    field = GaussianProcessField(0.0, 1.0, 80.0, seed=5)
    near, far = empirical_correlation(field, 1000.0, [10.0, 500.0], seed=1)
    assert near > 0.7
    assert far < 0.5
    assert near > far


def test_gp_field_drift_changes_values_over_time():
    frozen = GaussianProcessField(0.0, 1.0, 100.0, seed=1, drift_rate=0.0)
    drifting = GaussianProcessField(0.0, 1.0, 100.0, seed=1, drift_rate=0.5)
    assert frozen.value(5, 5, t=0.0) == frozen.value(5, 5, t=100.0)
    assert drifting.value(5, 5, t=0.0) != drifting.value(5, 5, t=100.0)


def test_gp_field_validation():
    with pytest.raises(ValueError):
        GaussianProcessField(0.0, -1.0, 10.0)
    with pytest.raises(ValueError):
        GaussianProcessField(0.0, 1.0, 0.0)
    with pytest.raises(ValueError):
        GaussianProcessField(0.0, 1.0, 10.0, features=0)


def test_gradient_field_exact_without_noise():
    field = GradientField(10.0, 0.01, -0.02)
    assert field.value(100.0, 50.0) == pytest.approx(10.0 + 1.0 - 1.0)
    values = field.sample(np.array([0.0, 100.0]), np.array([0.0, 0.0]))
    assert values[1] - values[0] == pytest.approx(1.0)


def test_gradient_field_with_noise_keeps_trend():
    field = GradientField(0.0, 0.1, 0.0, noise_std=0.5, seed=2)
    left = field.sample(np.full(200, 0.0), np.linspace(0, 1000, 200)).mean()
    right = field.sample(np.full(200, 1000.0), np.linspace(0, 1000, 200)).mean()
    assert right - left > 50.0


def test_patchy_field_has_plateaus():
    field = PatchyField(20.0, 5.0, area_side=500.0, patches=5, smooth_std=0.0, seed=7)
    # Two points very close together share a patch -> identical values.
    assert field.value(100.0, 100.0) == field.value(100.5, 100.2)
    # Across the whole area there are at most `patches` distinct levels.
    rng = np.random.default_rng(1)
    values = field.sample(rng.uniform(0, 500, 300), rng.uniform(0, 500, 300))
    assert len(np.unique(np.round(values, 9))) <= 5


def test_patchy_field_validation():
    with pytest.raises(ValueError):
        PatchyField(0.0, 1.0, 100.0, patches=0)


def test_uncorrelated_field_is_stable_per_point():
    field = UncorrelatedField(0.0, 1.0, seed=3)
    assert field.value(10.0, 20.0) == field.value(10.0, 20.0)
    assert field.value(10.0, 20.0) != field.value(10.0, 20.000001) or True  # may collide


def test_uncorrelated_field_has_no_spatial_structure():
    field = UncorrelatedField(0.0, 1.0, seed=3)
    correlations = empirical_correlation(field, 1000.0, [5.0], pairs_per_distance=500)
    assert abs(correlations[0]) < 0.2


def test_constant_field():
    field = ConstantField(7.5)
    assert field.value(0, 0) == 7.5
    assert np.all(field.sample(np.zeros(4), np.ones(4)) == 7.5)
