"""The telemetry layer: metrics, spans, JSONL export, CLI, reconciliation.

Covers the three contracts `docs/observability.md` documents:

* with telemetry disabled, protocols behave byte-identically;
* the JSONL export round-trips losslessly (re-export == original);
* with telemetry enabled, the traffic/energy counters reconcile exactly
  against ``TransmissionStats`` and the energy ledgers.
"""

import io
import json

import pytest

from repro.joins.runner import run_snapshot
from repro.joins.sensjoin import (
    PHASE_COLLECTION,
    PHASE_FILTER,
    PHASE_FINAL,
    SensJoin,
)
from repro.errors import TraceFormatError
from repro.obs import (
    NULL_REGISTRY,
    NULL_TELEMETRY,
    MetricsRegistry,
    NullRegistry,
    Telemetry,
    read_jsonl,
    write_jsonl,
)
from repro.obs.export import jsonify_detail
from repro.sim.trace import (
    KNOWN_EVENT_KINDS,
    ListTracer,
    RingTracer,
    SPAN_END,
    SPAN_START,
    TraceEvent,
)


# -- metrics ----------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_labels_create_distinct_instruments(self):
        reg = MetricsRegistry()
        reg.counter("tx", node=1).inc()
        reg.counter("tx", node=2).inc(2)
        assert reg.value("counter", "tx", node=1) == 1
        assert reg.value("counter", "tx", node=2) == 2
        assert len(reg) == 2

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("tx").inc(-1)

    def test_counter_rejects_non_finite(self):
        reg = MetricsRegistry()
        counter = reg.counter("tx")
        counter.inc(2)
        for bad in (float("nan"), float("inf"), float("-inf"), "three", None):
            with pytest.raises(ValueError, match="finite number"):
                counter.inc(bad)
        assert counter.value == 2  # nothing leaked into the sum

    def test_gauge_rejects_non_finite(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        gauge.set(4)
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="finite number"):
                gauge.set(bad)
            with pytest.raises(ValueError, match="finite number"):
                gauge.inc(bad)
            with pytest.raises(ValueError, match="finite number"):
                gauge.dec(bad)
        assert gauge.value == 4

    def test_histogram_rejects_non_finite(self):
        reg = MetricsRegistry()
        hist = reg.histogram("latency")
        hist.observe(1.0)
        for bad in (float("nan"), float("inf"), float("-inf"), "fast"):
            with pytest.raises(ValueError, match="finite number"):
                hist.observe(bad)
        assert hist.count == 1 and hist.sum == 1.0
        assert hist.min == 1.0 and hist.max == 1.0

    def test_null_instruments_still_accept_anything(self):
        # The disabled registry's shared no-op instrument must stay a
        # no-op: validation lives on the real instruments only.
        from repro.obs.metrics import NULL_REGISTRY

        NULL_REGISTRY.counter("tx").inc(float("nan"))
        NULL_REGISTRY.histogram("latency").observe(float("inf"))

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert reg.value("gauge", "depth") == 4

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        hist = reg.histogram("latency")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3 and hist.sum == 6.0
        assert hist.min == 1.0 and hist.max == 3.0
        assert hist.mean == 2.0

    def test_total_sums_and_filters(self):
        reg = MetricsRegistry()
        reg.counter("tx", node=1, phase="a").inc(10)
        reg.counter("tx", node=2, phase="a").inc(5)
        reg.counter("tx", node=1, phase="b").inc(100)
        assert reg.total("tx") == 115
        assert reg.total("tx", phase="a") == 15
        assert reg.total("tx", node=1) == 110
        assert reg.total("tx", phase="missing") == 0

    def test_same_labels_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)

    def test_samples_deterministic_order(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a", z=1).inc()
        reg.histogram("a").observe(1.0)
        names = [(s.name, s.kind) for s in reg.samples()]
        assert names == sorted(names)

    def test_null_registry_is_disabled_no_op(self):
        assert NULL_REGISTRY.enabled is False
        NULL_REGISTRY.counter("x", node=1).inc(5)
        NULL_REGISTRY.gauge("y").set(3)
        NULL_REGISTRY.histogram("z").observe(1.0)
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.total("x") == 0.0
        assert isinstance(NULL_REGISTRY, NullRegistry)


# -- spans ------------------------------------------------------------------


class TestSpans:
    def test_span_emits_start_end_and_histogram(self):
        tel = Telemetry.capture()
        with tel.span("phase-x", node_id=3, start=1.0, proto="p") as sp:
            sp.end = 4.0
        kinds = [e.kind for e in tel.tracer]
        assert kinds == [SPAN_START, SPAN_END]
        end = tel.tracer.events[-1]
        assert end.time == 4.0
        assert end.detail["duration_s"] == 3.0
        assert end.detail["ok"] is True and end.detail["proto"] == "p"
        hist = tel.registry.value("histogram", "span_seconds", span="phase-x", proto="p")
        assert hist == {"count": 1, "sum": 3.0, "min": 3.0, "max": 3.0}

    def test_span_uses_clock_when_no_explicit_times(self):
        now = [10.0]
        tel = Telemetry.capture(clock=lambda: now[0])
        with tel.span("tick"):
            now[0] = 12.5
        end = tel.tracer.events[-1]
        assert end.detail["duration_s"] == 2.5

    def test_span_clamps_backwards_end(self):
        tel = Telemetry.capture()
        with tel.span("weird", start=5.0) as sp:
            sp.end = 3.0  # must not produce a negative duration
        assert tel.tracer.events[-1].detail["duration_s"] == 0.0

    def test_span_flags_exception_not_ok(self):
        tel = Telemetry.capture()
        with pytest.raises(RuntimeError):
            with tel.span("doomed", start=0.0):
                raise RuntimeError("boom")
        end = tel.tracer.events[-1]
        assert end.kind == SPAN_END and end.detail["ok"] is False

    def test_label_mutation_visible_on_end_event(self):
        tel = Telemetry.capture()
        with tel.span("attempt", start=0.0, completed=False) as sp:
            sp.labels["completed"] = True
        assert tel.tracer.events[-1].detail["completed"] is True

    def test_disabled_span_yields_but_emits_nothing(self):
        with NULL_TELEMETRY.span("quiet", start=0.0) as sp:
            sp.end = 9.0  # settable unconditionally
        assert NULL_TELEMETRY.enabled is False

    def test_with_clock_shares_sinks(self):
        tel = Telemetry.capture()
        derived = tel.with_clock(lambda: 7.0)
        assert derived.tracer is tel.tracer
        assert derived.registry is tel.registry
        with derived.span("shifted"):
            pass
        assert tel.tracer.events[0].time == 7.0


# -- JSONL export -----------------------------------------------------------


def _capture_with_data() -> Telemetry:
    tel = Telemetry.capture()
    tel.tracer.emit(0.5, 1, "treecut-exit", tuples=2)
    tel.tracer.emit(1.0, 2, "subtree-store", points={3, 1}, path=(0, 2))
    tel.registry.counter("tx_packets_total", node=1, phase="a").inc(4)
    tel.registry.gauge("depth").set(2)
    tel.registry.histogram("span_seconds", span="s").observe(0.25)
    return tel

def test_write_read_round_trip_is_byte_identical():
    tel = _capture_with_data()
    first = io.StringIO()
    write_jsonl(first, tracer=tel.tracer, registry=tel.registry, meta={"nodes": 2})
    log = read_jsonl(io.StringIO(first.getvalue()))
    second = io.StringIO()
    write_jsonl(
        second,
        events=log.events,
        registry=log.registry(),
        meta=log.meta,
        dropped=log.dropped,
    )
    assert second.getvalue() == first.getvalue()


def test_read_reconstructs_events_and_metrics():
    tel = _capture_with_data()
    buffer = io.StringIO()
    lines = write_jsonl(buffer, tracer=tel.tracer, registry=tel.registry)
    # header + 2 events + 3 metrics + trailer
    assert lines == 7
    log = read_jsonl(io.StringIO(buffer.getvalue()))
    assert [e.kind for e in log.events] == ["treecut-exit", "subtree-store"]
    # JSON has no sets/tuples: canonicalised to sorted list / list.
    assert log.events[1].detail == {"points": [1, 3], "path": [0, 2]}
    reg = log.registry()
    assert reg.total("tx_packets_total") == 4
    assert reg.value("gauge", "depth") == 2
    assert reg.value("histogram", "span_seconds", span="s")["count"] == 1


def test_ring_tracer_dropped_count_in_trailer():
    tracer = RingTracer(capacity=2)
    for i in range(5):
        tracer.emit(float(i), i, "tick")
    buffer = io.StringIO()
    write_jsonl(buffer, tracer=tracer)
    log = read_jsonl(io.StringIO(buffer.getvalue()))
    assert len(log.events) == 2 and log.dropped == 3


def test_jsonify_detail_canonical_forms():
    assert jsonify_detail((1, 2)) == [1, 2]
    assert jsonify_detail({3, 1, 2}) == [1, 2, 3]
    assert jsonify_detail({"k": (1,)}) == {"k": [1]}
    assert jsonify_detail(True) is True and jsonify_detail(None) is None
    assert isinstance(jsonify_detail(object()), str)


class TestMalformedTraces:
    def _lines(self) -> list:
        buffer = io.StringIO()
        write_jsonl(buffer, events=[TraceEvent(0.0, 1, "tick", {})])
        return buffer.getvalue().splitlines()

    def _expect_error(self, text: str):
        with pytest.raises(TraceFormatError):
            read_jsonl(io.StringIO(text))

    def test_missing_header(self):
        self._expect_error("\n".join(self._lines()[1:]))

    def test_missing_trailer(self):
        self._expect_error("\n".join(self._lines()[:-1]))

    def test_records_after_trailer(self):
        lines = self._lines()
        self._expect_error("\n".join(lines + [lines[1]]))

    def test_trailer_count_mismatch(self):
        lines = self._lines()
        lines[-1] = json.dumps({"record": "end", "events": 99, "metrics": 0, "dropped": 0})
        self._expect_error("\n".join(lines))

    def test_unknown_record_type(self):
        lines = self._lines()
        lines.insert(1, json.dumps({"record": "mystery"}))
        self._expect_error("\n".join(lines))

    def test_unknown_metric_kind(self):
        lines = self._lines()
        lines.insert(
            1,
            json.dumps({"record": "metric", "metric": "summary", "name": "x", "value": 1}),
        )
        self._expect_error("\n".join(lines))

    def test_schema_mismatch(self):
        lines = self._lines()
        lines[0] = json.dumps({"record": "header", "schema": 99, "meta": {}})
        self._expect_error("\n".join(lines))

    def test_invalid_json(self):
        self._expect_error("not json at all")

    def test_empty_file(self):
        self._expect_error("")


# -- end-to-end: instrumented runs ------------------------------------------


class TestInstrumentedRun:
    @pytest.fixture()
    def traced(self, small_network, small_world, tail_query):
        tel = Telemetry.capture()
        outcome = run_snapshot(
            small_network, small_world, tail_query(1.5), "sens-join",
            tree_seed=11, telemetry=tel,
        )
        return tel, outcome, small_network

    def test_traffic_counters_reconcile_with_stats(self, traced):
        tel, outcome, network = traced
        reg = tel.registry
        by_phase = network.stats.tx_packets_by_phase()
        for phase in (PHASE_COLLECTION, PHASE_FILTER, PHASE_FINAL):
            assert reg.total("tx_packets_total", phase=phase) == by_phase.get(phase, 0)

    def test_energy_counters_reconcile_with_ledger(self, traced):
        tel, outcome, network = traced
        assert tel.registry.total("energy_joules_total") == pytest.approx(
            network.total_energy(), abs=1e-12
        )

    def test_phase_spans_cover_response_time(self, traced):
        tel, outcome, _ = traced
        ends = {
            e.detail["span"]: e
            for e in tel.tracer.filter(kind=SPAN_END)
        }
        assert set(ends) >= {PHASE_COLLECTION, PHASE_FILTER, PHASE_FINAL}
        assert ends[PHASE_COLLECTION].time == pytest.approx(
            outcome.details["collection_finish_s"]
        )
        # Spans carry raw phase-boundary times; the outcome's response time
        # adds the epoch scheduling overhead on top, so it bounds them.
        assert ends[PHASE_FINAL].time <= outcome.response_time_s
        assert (
            ends[PHASE_COLLECTION].time
            <= ends[PHASE_FILTER].time
            <= ends[PHASE_FINAL].time
        )
        for event in ends.values():
            assert event.detail["duration_s"] >= 0.0

    def test_treecut_counters_match_outcome_details(self, traced):
        tel, outcome, _ = traced
        reg = tel.registry
        assert reg.total("treecut_exits_total") == outcome.details["treecut_exited"]
        assert reg.total("proxy_stores_total") == outcome.details["treecut_proxies"]

    def test_event_kinds_all_registered(self, traced):
        tel, _, _ = traced
        assert tel.tracer.kinds() <= KNOWN_EVENT_KINDS

    def test_telemetry_does_not_change_results(
        self, small_world, tail_query
    ):
        from repro.sim.network import DeploymentConfig, deploy_uniform
        from repro.data.relations import SensorWorld

        def run(telemetry):
            config = DeploymentConfig(node_count=200, area_side_m=383.0, seed=11)
            network = deploy_uniform(config)
            world = SensorWorld.homogeneous(network, seed=11, area_side_m=383.0)
            world.take_snapshot(0.0)
            return network, run_snapshot(
                network, world, tail_query(1.5), "sens-join",
                tree_seed=11, telemetry=telemetry,
            )

        net_plain, plain = run(None)
        net_traced, traced = run(Telemetry.capture())
        assert plain.result.signature() == traced.result.signature()
        assert plain.total_transmissions == traced.total_transmissions
        assert plain.total_bytes == traced.total_bytes
        assert plain.response_time_s == traced.response_time_s
        assert plain.details == traced.details
        assert net_plain.total_energy() == net_traced.total_energy()

    def test_runner_restores_channel_telemetry(
        self, small_network, small_world, tail_query
    ):
        before_tracer = small_network.channel.tracer
        run_snapshot(
            small_network, small_world, tail_query(1.5), "sens-join",
            tree_seed=11, telemetry=Telemetry.capture(),
        )
        assert small_network.channel.tracer is before_tracer
        assert small_network.channel.telemetry is NULL_TELEMETRY

    def test_instrumented_none_preserves_attached_tracer(
        self, small_network, small_world, tail_query
    ):
        attached = ListTracer()
        small_network.channel.tracer = attached
        run_snapshot(
            small_network, small_world, tail_query(1.5), "sens-join",
            tree_seed=11,  # telemetry=None must not clobber the tracer
        )
        assert small_network.channel.tracer is attached

    def test_des_engine_emits_spans_on_simulated_clock(
        self, small_network, small_world, tail_query
    ):
        from repro.joins.des_sensjoin import DesSensJoin

        tel = Telemetry.capture()
        outcome = run_snapshot(
            small_network, small_world, tail_query(1.5), DesSensJoin(),
            tree_seed=11, telemetry=tel,
        )
        ends = {e.detail["span"]: e for e in tel.tracer.filter(kind=SPAN_END)}
        assert PHASE_COLLECTION in ends
        assert ends[PHASE_COLLECTION].detail["ok"] is True
        assert tel.registry.total("energy_joules_total") == pytest.approx(
            small_network.total_energy(), abs=1e-12
        )
        assert len(outcome.result.rows) > 0


# -- CLI --------------------------------------------------------------------


class TestObsCli:
    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        from repro.obs.__main__ import main

        path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
        code = main(
            ["record", "--nodes", "40", "--seed", "0", "--out", str(path)]
        )
        assert code == 0
        return path

    def test_record_writes_valid_jsonl(self, trace_file):
        log = read_jsonl(trace_file)
        assert log.meta["nodes"] == 40
        assert log.events and log.metrics

    def test_summary(self, trace_file, capsys):
        from repro.obs.__main__ import main

        assert main(["summary", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "events" in out and PHASE_COLLECTION in out

    def test_grep_filters(self, trace_file, capsys):
        from repro.obs.__main__ import main

        assert main(["grep", str(trace_file), "--kind", "span-end"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out and all("span-end" in line for line in out)

    def test_timeline(self, trace_file, capsys):
        from repro.obs.__main__ import main

        assert main(["timeline", str(trace_file)]) == 0
        assert "t=" in capsys.readouterr().out

    def test_energy_breakdown_reconciles(self, trace_file, capsys):
        from repro.obs.__main__ import main

        assert main(["energy-breakdown", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "RECONCILIATION FAILED" not in out


# -- churn + broker reconciliation ------------------------------------------


def _tail(threshold: float, select: str = "A.hum, B.hum"):
    from repro.query.parser import parse_query

    return parse_query(
        f"SELECT {select} FROM sensors A, sensors B "
        f"WHERE A.temp - B.temp > {threshold} ONCE"
    )


def _churned_broker_run(make_deployment, requests, concurrency, churn_kwargs):
    from repro.service.broker import BrokerConfig, DeadlinePolicy, QueryBroker
    from repro.sim.faults import ChurnModel

    network, world = make_deployment(50, seed=11)
    telemetry = Telemetry.capture(capacity=32768)
    broker = QueryBroker(
        network,
        world,
        config=BrokerConfig(
            concurrency=concurrency,
            deadline=DeadlinePolicy(timeout_s=90.0),
            disseminate_queries=True,
        ),
        telemetry=telemetry,
        churn=ChurnModel(**churn_kwargs),
    )
    report = broker.run(requests)
    return network, telemetry, report


class TestChurnedBrokerReconcile:
    """Satellite: repair, aborted-attempt, and piggybacked-dissemination
    energy all land in the phase counters and reconcile exactly against the
    channel ledger — the broker instruments its *whole* run, not just the
    per-batch execution paths."""

    @pytest.fixture(scope="class")
    def repair_run(self, make_deployment):
        """A churned run whose crash orphans children (repair beacons flow)
        and whose first batch mixes two sharing signatures (piggyback)."""
        from repro.service.workloads import QueryRequest

        queries = [_tail(1.0), _tail(1.6), _tail(1.0, "A.hum, B.hum, A.pres")]
        requests = [
            QueryRequest(query_id=i, arrival_s=0.0, template_index=i, query=q)
            for i, q in enumerate(queries)
        ] + [
            QueryRequest(query_id=3, arrival_s=150.0, template_index=0,
                         query=_tail(1.0)),
            QueryRequest(query_id=4, arrival_s=150.0, template_index=1,
                         query=_tail(1.6)),
        ]
        return _churned_broker_run(
            make_deployment, requests, concurrency=3,
            churn_kwargs=dict(
                departure_rate=0.002, rejoin_delay_s=60.0,
                rejoin_jitter_m=5.0, horizon_s=250.0, seed=7,
            ),
        )

    @pytest.fixture(scope="class")
    def aborted_run(self, make_deployment):
        """Same deployment, deadline pressure instead: an epoch aborts."""
        from repro.service.workloads import QueryRequest

        requests = [
            QueryRequest(query_id=0, arrival_s=0.0, template_index=0,
                         query=_tail(1.0)),
            QueryRequest(query_id=1, arrival_s=0.0, template_index=0,
                         query=_tail(1.0)),
            QueryRequest(query_id=2, arrival_s=120.0, template_index=0,
                         query=_tail(1.0)),
            QueryRequest(query_id=3, arrival_s=120.0, template_index=0,
                         query=_tail(1.0)),
        ]
        return _churned_broker_run(
            make_deployment, requests, concurrency=2,
            churn_kwargs=dict(
                departure_rate=0.002, rejoin_delay_s=60.0,
                rejoin_jitter_m=5.0, horizon_s=250.0, seed=7,
            ),
        )

    def test_repair_energy_reconciles_exactly(self, repair_run):
        from repro.obs.reconcile import (
            energy_model_map,
            phases_in,
            reconcile_phase_energy,
            reconciliation_tolerance,
        )

        network, telemetry, report = repair_run
        reg = telemetry.registry
        assert report.details["repairs"] >= 1
        assert report.details["repair_energy_j"] > 0
        assert "tree-maintenance" in phases_in(reg)
        assert reg.total("energy_joules_total", phase="tree-maintenance") == (
            pytest.approx(report.details["repair_energy_j"])
        )
        total, worst, deltas = reconcile_phase_energy(
            reg, energy_model_map(network.energy_model)
        )
        assert worst <= reconciliation_tolerance(total)
        assert total == pytest.approx(report.total_energy_j)

    def test_piggybacked_dissemination_reconciles(self, repair_run):
        network, telemetry, report = repair_run
        reg = telemetry.registry
        # Two distinct sharing signatures in one batch → the dissemination
        # wave carries both groups' payloads on shared broadcasts.
        assert report.details["piggybacked_broadcasts"] > 0
        assert reg.total("broker_piggybacked_broadcasts_total") == (
            report.details["piggybacked_broadcasts"]
        )
        # The piggybacked wave's traffic is in the ledger too: registry
        # total equals the report total, which equals the per-node sum.
        assert reg.total("energy_joules_total") == pytest.approx(
            report.total_energy_j
        )

    def test_aborted_attempt_energy_reconciles(self, aborted_run):
        from repro.obs.reconcile import (
            energy_model_map,
            reconcile_phase_energy,
            reconciliation_tolerance,
        )

        network, telemetry, report = aborted_run
        reg = telemetry.registry
        # A deadline-missed epoch burns real energy; the ledger keeps it.
        assert report.details["aborted_energy_j"] > 0
        total, worst, _ = reconcile_phase_energy(
            reg, energy_model_map(network.energy_model)
        )
        assert worst <= reconciliation_tolerance(total)
        assert total == pytest.approx(report.total_energy_j)


# -- compare / hotspots CLIs -------------------------------------------------


def _inflate_phase_energy(src, dst, factor: float, phase: str) -> None:
    """Copy a trace, multiplying one phase's energy counters by ``factor``."""
    out = []
    for line in src.read_text().splitlines():
        obj = json.loads(line)
        if (
            obj.get("record") == "metric"
            and obj.get("name") == "energy_joules_total"
            and obj.get("labels", {}).get("phase") == phase
        ):
            obj["value"] = obj["value"] * factor
        out.append(json.dumps(obj))
    dst.write_text("\n".join(out) + "\n")


class TestCompareCli:
    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        from repro.obs.__main__ import main

        path = tmp_path_factory.mktemp("cmp") / "a.jsonl"
        assert main(
            ["record", "--nodes", "30", "--seed", "2", "--out", str(path)]
        ) == 0
        return path

    def test_identical_traces_compare_clean(self, trace_file, capsys):
        from repro.obs.__main__ import main

        assert main(["compare", str(trace_file), str(trace_file)]) == 0
        assert "no energy regression" in capsys.readouterr().out

    def test_injected_regression_fails(self, trace_file, tmp_path, capsys):
        from repro.obs.__main__ import main

        worse = tmp_path / "b.jsonl"
        _inflate_phase_energy(trace_file, worse, 1.5, PHASE_COLLECTION)
        assert main(["compare", str(trace_file), str(worse)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "ENERGY REGRESSION" in captured.err

    def test_below_tolerance_inflation_passes(self, trace_file, tmp_path, capsys):
        from repro.obs.__main__ import main

        nearly = tmp_path / "b.jsonl"
        _inflate_phase_energy(trace_file, nearly, 1.01, PHASE_COLLECTION)
        assert main(["compare", str(trace_file), str(nearly)]) == 0
        assert "no energy regression" in capsys.readouterr().out

    def test_improvement_is_not_a_regression(self, trace_file, tmp_path, capsys):
        from repro.obs.__main__ import main

        better = tmp_path / "b.jsonl"
        _inflate_phase_energy(trace_file, better, 0.5, PHASE_COLLECTION)
        assert main(["compare", str(trace_file), str(better)]) == 0
        assert "no energy regression" in capsys.readouterr().out


class TestHotspotsCli:
    def test_counter_fallback_ranks_nodes(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        path = tmp_path / "trace.jsonl"
        assert main(
            ["record", "--nodes", "30", "--seed", "2", "--out", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(["hotspots", str(path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "Gini" in out and "max/mean" in out

    def test_no_per_node_data_exits_2(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        path = tmp_path / "empty.jsonl"
        with open(path, "w") as handle:
            write_jsonl(handle, events=[TraceEvent(0.0, 1, "tick", {})])
        assert main(["hotspots", str(path)]) == 2
        assert "no per-node energy" in capsys.readouterr().err


class TestSummaryWarnings:
    def test_tracer_overflow_warns(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        tracer = RingTracer(capacity=2)
        for i in range(5):
            tracer.emit(float(i), i, "tick")
        path = tmp_path / "overflow.jsonl"
        with open(path, "w") as handle:
            write_jsonl(handle, tracer=tracer)
        assert main(["summary", str(path)]) == 0
        assert "WARNING: tracer ring overflowed" in capsys.readouterr().out

    def test_sampler_overflow_warns(self, tmp_path, capsys):
        from repro.obs.__main__ import main
        from repro.obs.timeseries import MetricsSampler

        telemetry = Telemetry.capture()
        sampler = MetricsSampler(telemetry=telemetry, period_s=1.0, capacity=2)
        gauge = telemetry.registry.gauge("depth")
        sampler.watch_counters(["depth"])
        for tick in range(5):
            gauge.set(tick)
            sampler.sample(float(tick))
        assert sampler.dropped > 0
        path = tmp_path / "sampled.jsonl"
        with open(path, "w") as handle:
            write_jsonl(
                handle,
                tracer=telemetry.tracer,
                registry=telemetry.registry,
                series=sampler.all_series(),
            )
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "WARNING: sampler rings overflowed" in out


# -- acceptance: sampled broker run reproduces the energy funnel -------------


class TestSampledBrokerFunnel:
    """A sampled 150-node churned broker run exports series from which
    ``hotspots`` reproduces the near-base-station energy funnel."""

    @pytest.fixture(scope="class")
    def funnel_run(self, make_deployment, tmp_path_factory):
        from repro.obs.timeseries import MetricsSampler
        from repro.service.broker import BrokerConfig, DeadlinePolicy, QueryBroker
        from repro.service.workloads import QueryRequest
        from repro.sim.faults import ChurnModel

        network, world = make_deployment(150, seed=9)
        telemetry = Telemetry.capture(capacity=65536)
        sampler = MetricsSampler(telemetry=telemetry, period_s=15.0)
        sampler.watch_network(network)
        broker = QueryBroker(
            network,
            world,
            config=BrokerConfig(
                concurrency=2, deadline=DeadlinePolicy(timeout_s=120.0)
            ),
            telemetry=telemetry,
            churn=ChurnModel(
                departure_rate=0.0005, rejoin_delay_s=40.0,
                rejoin_jitter_m=5.0, horizon_s=250.0, seed=3,
            ),
            sampler=sampler,
        )
        report = broker.run(
            [
                QueryRequest(query_id=i, arrival_s=i * 40.0,
                             template_index=0, query=_tail(1.0))
                for i in range(4)
            ]
        )
        path = tmp_path_factory.mktemp("funnel") / "series.jsonl"
        with open(path, "w") as handle:
            write_jsonl(
                handle,
                tracer=telemetry.tracer,
                registry=telemetry.registry,
                series=sampler.all_series(),
            )
        return broker, sampler, report, path

    def _energy_by_node(self, broker, sampler):
        in_tree = set(broker.tree.as_parent_map())
        return {
            series.labels["node"]: series.last[1]
            for series in sampler.all_series()
            if series.name == "node_energy_j"
            and series.labels.get("node", 0) != 0
            and series.labels["node"] in in_tree
        }

    def test_series_export_round_trips(self, funnel_run):
        broker, sampler, report, path = funnel_run
        log = read_jsonl(path)
        assert len(log.series) == len(sampler.all_series())
        assert sampler.samples_taken >= 2

    def test_top_nodes_sit_near_the_base_station(self, funnel_run):
        broker, sampler, report, path = funnel_run
        energy = self._energy_by_node(broker, sampler)
        depths = {node: broker.tree.depth(node) for node in energy}
        ranked = sorted(energy, key=lambda node: -energy[node])
        # The collection funnel: every top-5 energy node is within 3 hops
        # of the base station, and the top-10 mean depth is well below the
        # population mean (relays near the root do the heavy lifting).
        assert all(depths[node] <= 3 for node in ranked[:5])
        population_mean = sum(depths.values()) / len(depths)
        top10_mean = sum(depths[node] for node in ranked[:10]) / 10
        assert top10_mean < population_mean

    def test_hotspots_cli_reads_the_export(self, funnel_run, capsys):
        from repro.obs.__main__ import main

        broker, sampler, report, path = funnel_run
        assert main(["hotspots", str(path), "--top", "10"]) == 0
        out = capsys.readouterr().out
        assert "Gini" in out
        assert "the collection funnel" in out


# -- bench profiling --------------------------------------------------------


class TestBenchCacheCounters:
    def test_cache_counts_hits_misses_puts_evictions(self, tmp_path):
        from repro.bench.cache import ResultCache

        reg = MetricsRegistry()
        cache = ResultCache(tmp_path / "cache", registry=reg)
        assert cache.get("00aa") is None
        cache.put("00aa", {"x": 1})
        assert cache.get("00aa") == {"x": 1}
        removed = cache.clear()
        assert removed == 1
        assert reg.total("bench_cache_misses_total") == 1
        assert reg.total("bench_cache_hits_total") == 1
        assert reg.total("bench_cache_puts_total") == 1
        assert reg.total("bench_cache_evictions_total") == 1

    def test_default_registry_is_null(self, tmp_path):
        from repro.bench.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        assert cache.registry.enabled is False
        cache.put("00bb", {"x": 1})  # must not raise

    def test_manifest_profile_section(self, tmp_path):
        from repro.bench.harness import run_experiments

        cold = run_experiments(
            ["related_work"], jobs=1, cache_dir=tmp_path / "cache"
        )
        profile = cold.manifest["profile"]
        assert profile["cache"] == {"hits": 0, "misses": 1, "puts": 1, "evictions": 0}
        assert profile["slowest_cells"][0]["label"] == "related_work[0]"
        warm = run_experiments(
            ["related_work"], jobs=1, cache_dir=tmp_path / "cache"
        )
        assert warm.manifest["profile"]["cache"]["hits"] == 1
        assert warm.manifest["profile"]["slowest_cells"] == []
