"""DES replay cross-validation of the analytic timing model."""

import pytest

from repro import constants
from repro.joins.external import EXTERNAL_PHASE, ExternalJoin
from repro.joins.runner import run_snapshot
from repro.joins.sensjoin import PHASE_COLLECTION, PHASE_FILTER, SensJoin
from repro.sim.replay import replay_collection_phase, replay_dissemination_phase


def test_external_join_critical_path_matches_des(
    small_network, small_world, small_tree, tail_query
):
    """The external join's analytic serialisation time must equal an
    independent DES replay of its recorded transmissions."""
    outcome = run_snapshot(
        small_network, small_world, tail_query(1.5), ExternalJoin(), tree=small_tree,
        tree_seed=11,
    )
    latency_for = small_network.channel.latency_for
    replayed = replay_collection_phase(
        small_tree, small_network.channel.log, EXTERNAL_PHASE, latency_for
    )
    analytic = outcome.response_time_s - small_tree.height * constants.DEFAULT_LEVEL_SLOT_S
    assert replayed == pytest.approx(analytic, abs=1e-9)


def test_sens_collection_phase_matches_des(
    small_network, small_world, small_tree, tail_query
):
    outcome = run_snapshot(
        small_network, small_world, tail_query(1.5), SensJoin(), tree=small_tree,
        tree_seed=11,
    )
    latency_for = small_network.channel.latency_for
    replayed = replay_collection_phase(
        small_tree, small_network.channel.log, PHASE_COLLECTION, latency_for
    )
    assert replayed == pytest.approx(outcome.details["collection_finish_s"], abs=1e-9)


def test_filter_dissemination_arrivals_monotone_in_depth(
    small_network, small_world, small_tree, tail_query
):
    run_snapshot(
        small_network, small_world, tail_query(1.0), SensJoin(), tree=small_tree,
        tree_seed=11,
    )
    latency_for = small_network.channel.latency_for
    arrivals = replay_dissemination_phase(
        small_tree, small_network.channel.log, PHASE_FILTER, latency_for
    )
    assert arrivals[small_tree.root] == 0.0
    for node_id, when in arrivals.items():
        if node_id == small_tree.root:
            continue
        parent = small_tree.parent(node_id)
        if parent in arrivals:
            assert when >= arrivals[parent]


def test_replay_requires_root_participation(small_tree):
    with pytest.raises(Exception):
        replay_collection_phase(small_tree, [], "phase", lambda b: 0.0, participants=[1])


def test_replay_empty_phase_finishes_immediately(small_tree):
    time = replay_collection_phase(small_tree, [], "nothing", lambda b: 1.0)
    assert time == 0.0


def test_replay_collection_single_node_tree():
    """A root-only tree has no children to wait for and nothing to send:
    the phase completes at t=0 without spawning any dependency edges."""
    from repro.routing.tree import RoutingTree

    tree = RoutingTree({}, root=0)
    time = replay_collection_phase(tree, [], "anything", lambda b: 1.0)
    assert time == 0.0


def test_replay_dissemination_single_node_tree():
    from repro.routing.tree import RoutingTree

    tree = RoutingTree({}, root=0)
    arrivals = replay_dissemination_phase(tree, [], "anything", lambda b: 1.0)
    assert arrivals == {0: 0.0}


def test_replay_dissemination_empty_phase(small_tree):
    """No broadcasts in the phase: only the root 'arrives' (at 0); nodes
    that never received anything are absent rather than defaulted."""
    arrivals = replay_dissemination_phase(small_tree, [], "nothing", lambda b: 1.0)
    assert arrivals == {small_tree.root: 0.0}
