"""Shared fixtures: small deterministic deployments and query helpers.

The grid deployment gives hand-checkable topology; the uniform one gives the
paper's setting at a test-friendly scale.  Everything is seeded, so failures
reproduce exactly.
"""

from __future__ import annotations

import pytest

from repro.data.relations import SensorWorld
from repro.query.parser import parse_query
from repro.routing.ctp import build_tree
from repro.sim.network import DeploymentConfig, deploy_grid, deploy_uniform

#: Area side that keeps the paper's density for a 200-node network.
SMALL_SIDE = 383.0


@pytest.fixture(scope="session")
def make_deployment():
    """Factory for seeded ``(network, world)`` pairs at the paper's density.

    Replaces per-module copies of the same deployment boilerplate: tests ask
    for exactly the knobs they vary (``node_count``, ``seed``, ``drift_rate``,
    ``loss_rate``) and get a uniform deployment whose area follows the
    paper's node density unless pinned with ``area_side_m``.  Session-scoped
    because the factory itself is stateless — every call builds fresh
    objects, so mutation in one test cannot leak into another.
    """

    def make(
        node_count: int,
        seed: int,
        drift_rate: float = 0.0,
        loss_rate: float = 0.0,
        area_side_m: float | None = None,
    ):
        if area_side_m is None:
            area_side_m = DeploymentConfig().scaled(node_count).area_side_m
        config = DeploymentConfig(
            node_count=node_count,
            area_side_m=area_side_m,
            seed=seed,
            loss_rate=loss_rate,
        )
        network = deploy_uniform(config)
        world = SensorWorld.homogeneous(
            network, seed=seed, area_side_m=area_side_m, drift_rate=drift_rate
        )
        return network, world

    return make


@pytest.fixture()
def grid_network():
    """7x7 grid, 40 m pitch, 50 m range: 4-neighbour connectivity."""
    config = DeploymentConfig(node_count=49, area_side_m=280.0, radio_range_m=50.0, seed=1)
    return deploy_grid(config)


@pytest.fixture()
def small_network():
    """200 nodes, paper density, seeded uniform deployment."""
    config = DeploymentConfig(node_count=200, area_side_m=SMALL_SIDE, seed=11)
    return deploy_uniform(config)


@pytest.fixture()
def small_world(small_network):
    """Homogeneous world over the small network, snapshot already taken."""
    world = SensorWorld.homogeneous(small_network, seed=11, area_side_m=SMALL_SIDE)
    world.take_snapshot(0.0)
    return world


@pytest.fixture()
def small_tree(small_network):
    """Converged routing tree for the small network."""
    return build_tree(small_network, seed=11)


@pytest.fixture()
def q1_style():
    """Q1-flavoured query: one join attribute, aggregate select."""
    return parse_query(
        "SELECT MIN(distance(A.x, A.y, B.x, B.y)) "
        "FROM sensors A, sensors B WHERE A.temp - B.temp > 10.0 ONCE"
    )


@pytest.fixture()
def q2_style():
    """Q2-flavoured query: three join attributes, similarity + distance."""
    return parse_query(
        "SELECT |A.hum - B.hum|, |A.pres - B.pres| "
        "FROM sensors A, sensors B "
        "WHERE |A.temp - B.temp| < 0.3 AND distance(A.x, A.y, B.x, B.y) > 100 ONCE"
    )


@pytest.fixture()
def tail_query():
    """Range-condition query whose threshold controls selectivity."""

    def make(threshold: float, select: str = "A.hum, B.hum"):
        return parse_query(
            f"SELECT {select} FROM sensors A, sensors B "
            f"WHERE A.temp - B.temp > {threshold} ONCE"
        )

    return make
