"""Collection-tree construction and repair tests."""

from collections import deque

import pytest

from repro.errors import RoutingError
from repro.routing.ctp import build_tree, repair_tree
from repro.sim.node import BASE_STATION_ID


def bfs_hops(network):
    hops = {BASE_STATION_ID: 0}
    queue = deque([BASE_STATION_ID])
    while queue:
        current = queue.popleft()
        for neighbour in network.neighbours(current):
            if neighbour not in hops:
                hops[neighbour] = hops[current] + 1
                queue.append(neighbour)
    return hops


def test_tree_is_min_hop(small_network):
    tree = build_tree(small_network, seed=2)
    hops = bfs_hops(small_network)
    for node_id in small_network.sensor_node_ids:
        assert tree.depth(node_id) == hops[node_id]


def test_parent_is_a_neighbour(small_network):
    tree = build_tree(small_network, seed=2)
    for node_id in small_network.sensor_node_ids:
        assert tree.parent(node_id) in small_network.neighbours(node_id)


def test_tie_break_lowest_id_deterministic(small_network):
    a = build_tree(small_network, tie_break="lowest_id")
    b = build_tree(small_network, tie_break="lowest_id")
    assert a.as_parent_map() == b.as_parent_map()


def test_tie_break_random_is_seeded(small_network):
    a = build_tree(small_network, seed=5)
    b = build_tree(small_network, seed=5)
    c = build_tree(small_network, seed=6)
    assert a.as_parent_map() == b.as_parent_map()
    # Different seeds almost surely give at least one different parent.
    assert a.as_parent_map() != c.as_parent_map()


def test_tie_break_nearest_picks_closest(small_network):
    tree = build_tree(small_network, tie_break="nearest")
    hops = bfs_hops(small_network)
    for node_id in small_network.sensor_node_ids:
        node = small_network.nodes[node_id]
        parent = tree.parent(node_id)
        best = min(
            (
                node.distance_to(small_network.nodes[c])
                for c in small_network.neighbours(node_id)
                if hops[c] == hops[node_id] - 1
            ),
        )
        assert node.distance_to(small_network.nodes[parent]) == pytest.approx(best)


def test_partitioned_network_raises(small_network):
    # Kill every base-station neighbour: nobody can reach the root.
    for neighbour in list(small_network.neighbours(BASE_STATION_ID)):
        small_network.fail_node(neighbour)
    if small_network.is_connected():
        pytest.skip("deployment too dense to partition this way")
    with pytest.raises(RoutingError):
        build_tree(small_network)


def test_repair_keeps_unaffected_parents(small_network):
    tree = build_tree(small_network, seed=2)
    # Fail one leaf-ish node; parents of unrelated nodes must not change.
    victim = max(
        small_network.sensor_node_ids,
        key=lambda n: tree.depth(n),
    )
    small_network.fail_node(victim)
    report = repair_tree(small_network, tree, seed=2)
    changed = report.reparented
    for node_id in small_network.sensor_node_ids:
        if not small_network.nodes[node_id].alive:
            continue
        if node_id not in changed:
            assert report.tree.parent(node_id) == tree.parent(node_id)


def test_repair_after_link_failure_reroutes(small_network):
    tree = build_tree(small_network, seed=2)
    # Break one tree edge; the child must find a new parent (or be orphaned).
    child = max(small_network.sensor_node_ids, key=lambda n: tree.depth(n))
    parent = tree.parent(child)
    small_network.fail_link(child, parent)
    report = repair_tree(small_network, tree, seed=2)
    if child not in report.orphaned:
        assert report.tree.parent(child) != parent
        assert report.tree.parent(child) in small_network.neighbours(child)


def test_repair_reports_orphans(small_network):
    tree = build_tree(small_network, seed=2)
    # Isolate a node entirely by cutting all its links.
    victim = small_network.sensor_node_ids[10]
    for neighbour in list(small_network.neighbours(victim)):
        small_network.fail_link(victim, neighbour)
    report = repair_tree(small_network, tree, seed=2)
    assert victim in report.orphaned
    assert victim not in report.tree


def test_repaired_tree_is_min_hop_over_survivors(small_network):
    tree = build_tree(small_network, seed=2)
    victims = small_network.sensor_node_ids[3:6]
    for victim in victims:
        small_network.fail_node(victim)
    report = repair_tree(small_network, tree, seed=2)
    hops = bfs_hops(small_network)
    for node_id in report.tree.node_ids:
        if node_id == BASE_STATION_ID:
            continue
        assert report.tree.depth(node_id) == hops[node_id]
