"""Collection-tree construction and repair tests."""

from collections import deque

import pytest

from repro.errors import RoutingError
from repro.routing.ctp import build_tree, repair_tree
from repro.sim.network import DeploymentConfig, LinkQuality, Network, deploy_uniform
from repro.sim.node import BASE_STATION_ID, SensorNode


def bfs_hops(network):
    hops = {BASE_STATION_ID: 0}
    queue = deque([BASE_STATION_ID])
    while queue:
        current = queue.popleft()
        for neighbour in network.neighbours(current):
            if neighbour not in hops:
                hops[neighbour] = hops[current] + 1
                queue.append(neighbour)
    return hops


def test_tree_is_min_hop(small_network):
    tree = build_tree(small_network, seed=2)
    hops = bfs_hops(small_network)
    for node_id in small_network.sensor_node_ids:
        assert tree.depth(node_id) == hops[node_id]


def test_parent_is_a_neighbour(small_network):
    tree = build_tree(small_network, seed=2)
    for node_id in small_network.sensor_node_ids:
        assert tree.parent(node_id) in small_network.neighbours(node_id)


def test_tie_break_lowest_id_deterministic(small_network):
    a = build_tree(small_network, tie_break="lowest_id")
    b = build_tree(small_network, tie_break="lowest_id")
    assert a.as_parent_map() == b.as_parent_map()


def test_tie_break_random_is_seeded(small_network):
    a = build_tree(small_network, seed=5)
    b = build_tree(small_network, seed=5)
    c = build_tree(small_network, seed=6)
    assert a.as_parent_map() == b.as_parent_map()
    # Different seeds almost surely give at least one different parent.
    assert a.as_parent_map() != c.as_parent_map()


def test_tie_break_nearest_picks_closest(small_network):
    tree = build_tree(small_network, tie_break="nearest")
    hops = bfs_hops(small_network)
    for node_id in small_network.sensor_node_ids:
        node = small_network.nodes[node_id]
        parent = tree.parent(node_id)
        best = min(
            (
                node.distance_to(small_network.nodes[c])
                for c in small_network.neighbours(node_id)
                if hops[c] == hops[node_id] - 1
            ),
        )
        assert node.distance_to(small_network.nodes[parent]) == pytest.approx(best)


def test_partitioned_network_raises(small_network):
    # Kill every base-station neighbour: nobody can reach the root.
    for neighbour in list(small_network.neighbours(BASE_STATION_ID)):
        small_network.fail_node(neighbour)
    if small_network.is_connected():
        pytest.skip("deployment too dense to partition this way")
    with pytest.raises(RoutingError):
        build_tree(small_network)


def test_repair_keeps_unaffected_parents(small_network):
    tree = build_tree(small_network, seed=2)
    # Fail one leaf-ish node; parents of unrelated nodes must not change.
    victim = max(
        small_network.sensor_node_ids,
        key=lambda n: tree.depth(n),
    )
    small_network.fail_node(victim)
    report = repair_tree(small_network, tree, seed=2)
    changed = report.reparented
    for node_id in small_network.sensor_node_ids:
        if not small_network.nodes[node_id].alive:
            continue
        if node_id not in changed:
            assert report.tree.parent(node_id) == tree.parent(node_id)


def test_repair_after_link_failure_reroutes(small_network):
    tree = build_tree(small_network, seed=2)
    # Break one tree edge; the child must find a new parent (or be orphaned).
    child = max(small_network.sensor_node_ids, key=lambda n: tree.depth(n))
    parent = tree.parent(child)
    small_network.fail_link(child, parent)
    report = repair_tree(small_network, tree, seed=2)
    if child not in report.orphaned:
        assert report.tree.parent(child) != parent
        assert report.tree.parent(child) in small_network.neighbours(child)


def test_repair_reports_orphans(small_network):
    tree = build_tree(small_network, seed=2)
    # Isolate a node entirely by cutting all its links.
    victim = small_network.sensor_node_ids[10]
    for neighbour in list(small_network.neighbours(victim)):
        small_network.fail_link(victim, neighbour)
    report = repair_tree(small_network, tree, seed=2)
    assert victim in report.orphaned
    assert victim not in report.tree


def test_repaired_tree_is_min_hop_over_survivors(small_network):
    tree = build_tree(small_network, seed=2)
    victims = small_network.sensor_node_ids[3:6]
    for victim in victims:
        small_network.fail_node(victim)
    report = repair_tree(small_network, tree, seed=2)
    hops = bfs_hops(small_network)
    for node_id in report.tree.node_ids:
        if node_id == BASE_STATION_ID:
            continue
        assert report.tree.depth(node_id) == hops[node_id]


def test_tie_break_etx_prefers_reliable_parent():
    # A diamond: node 3 can reach the root through 1 (short link) or
    # 2 (boundary-length link); under loss, ETX must pick 1.
    nodes = [
        SensorNode(BASE_STATION_ID, 0.0, 0.0),
        SensorNode(1, 30.0, 10.0),
        SensorNode(2, 0.0, 50.0),
        SensorNode(3, 40.0, 40.0),
    ]
    network = Network(
        nodes, radio_range_m=50.0,
        link_quality=LinkQuality(loss_rate=0.3),
    )
    tree = build_tree(network)  # default resolves to "etx" on a lossy network
    dist_1 = network.nodes[3].distance_to(network.nodes[1])
    dist_2 = network.nodes[3].distance_to(network.nodes[2])
    assert dist_1 < dist_2  # sanity: 1 really is the shorter link
    assert network.link_etx(3, 1) < network.link_etx(3, 2)
    assert tree.parent(3) == 1


def test_default_tie_break_is_random_when_lossless(small_network):
    assert small_network.link_quality is None
    default_tree = build_tree(small_network, seed=11)
    random_tree = build_tree(small_network, tie_break="random", seed=11)
    assert default_tree.as_parent_map() == random_tree.as_parent_map()


def test_etx_tree_identical_across_loss_rates():
    # With a uniform worst-link rate the ETX ordering equals the distance
    # ordering, so the tree must not depend on the rate's magnitude.
    trees = []
    for loss_rate in (0.05, 0.1, 0.3):
        config = DeploymentConfig(
            node_count=80, area_side_m=240.0, seed=4, loss_rate=loss_rate
        )
        network = deploy_uniform(config)
        trees.append(build_tree(network).as_parent_map())
    assert trees[0] == trees[1] == trees[2]


def test_repair_uses_etx_on_lossy_network():
    config = DeploymentConfig(node_count=80, area_side_m=240.0, seed=4, loss_rate=0.3)
    network = deploy_uniform(config)
    tree = build_tree(network)
    # Fail one tree link; the child must re-pick by ETX (deterministic).
    child = next(n for n in tree.node_ids if n != tree.root
                 and len([c for c in network.neighbours(n)]) > 2)
    network.fail_link(child, tree.parent(child))
    report_a = repair_tree(network, tree)
    report_b = repair_tree(network, tree)
    assert report_a.tree.as_parent_map() == report_b.tree.as_parent_map()


# -- cascading failures (§IV-F recovery loop) ---------------------------------


def test_repeated_repairs_stay_min_hop(small_network):
    """Three crash/repair rounds: each repaired tree must still be a valid
    min-hop tree over the survivors (parents alive, neighbours, depths)."""
    tree = build_tree(small_network, seed=2)
    for index in (5, 20, 40):
        victim = small_network.sensor_node_ids[index]
        small_network.fail_node(victim)
        report = repair_tree(small_network, tree, seed=2)
        tree = report.tree
        assert victim not in tree
        hops = bfs_hops(small_network)
        for node_id in tree.node_ids:
            if node_id == BASE_STATION_ID:
                continue
            assert small_network.nodes[tree.parent(node_id)].alive
            assert tree.parent(node_id) in small_network.neighbours(node_id)
            assert tree.depth(node_id) == hops[node_id]


def test_cascading_crash_orphans_isolated_node(small_network):
    tree = build_tree(small_network, seed=2)
    # A deep node: killing its whole neighbourhood cuts it off entirely.
    victim = max(
        small_network.sensor_node_ids, key=lambda n: (tree.depth(n), -n)
    )
    assert tree.depth(victim) >= 2
    for neighbour in sorted(small_network.neighbours(victim)):
        small_network.fail_node(neighbour)
    report = repair_tree(small_network, tree, seed=2)
    assert victim in report.orphaned
    assert victim not in report.tree
    # A second repair over the same topology changes nothing further; the
    # still-disconnected node is reported orphaned again (network-level).
    again = repair_tree(small_network, report.tree, seed=2)
    assert again.tree.as_parent_map() == report.tree.as_parent_map()
    assert victim in again.orphaned
    assert not again.reparented


def test_repeated_repairs_deterministic_for_seed():
    maps = []
    for _ in range(2):
        config = DeploymentConfig(node_count=120, area_side_m=300.0, seed=7)
        network = deploy_uniform(config)
        tree = build_tree(network, seed=7)
        for index in (5, 20, 40):
            network.fail_node(network.sensor_node_ids[index])
            tree = repair_tree(network, tree, seed=7).tree
        maps.append(tree.as_parent_map())
    assert maps[0] == maps[1]
