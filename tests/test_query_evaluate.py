"""Join evaluation tests: exact vs brute force, aggregates, conservativeness."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.query.evaluate import CellBounds, Row, conservative_semijoin, evaluate_join
from repro.query.parser import parse_query


def make_rows(values, attr="temp", extra=None):
    rows = []
    for index, value in enumerate(values, start=1):
        data = {attr: float(value)}
        if extra:
            data.update({k: v[index - 1] for k, v in extra.items()})
        rows.append(Row(index, data))
    return rows


class TestExactJoin:
    def test_simple_theta_join_matches_brute_force(self):
        query = parse_query(
            "SELECT A.temp, B.temp FROM s A, s B WHERE A.temp - B.temp > 2 ONCE"
        )
        rows = make_rows([1.0, 3.0, 6.0, 10.0])
        result = evaluate_join(query, {"A": rows, "B": rows})
        brute = [
            (a.node_id, b.node_id)
            for a, b in itertools.product(rows, rows)
            if a.values["temp"] - b.values["temp"] > 2
        ]
        assert sorted(result.combinations) == sorted(brute)
        assert result.row_count == len(brute)

    def test_select_values_computed(self):
        query = parse_query(
            "SELECT A.temp - B.temp AS diff FROM s A, s B WHERE A.temp - B.temp > 2 ONCE"
        )
        rows = make_rows([1.0, 5.0])
        result = evaluate_join(query, {"A": rows, "B": rows})
        assert result.rows == [{"diff": 4.0}]

    def test_selection_predicates_applied(self):
        query = parse_query(
            "SELECT A.temp FROM s A, s B WHERE A.temp > 4 AND A.temp - B.temp > 0 ONCE"
        )
        rows = make_rows([1.0, 5.0])
        with_selection = evaluate_join(query, {"A": rows, "B": rows})
        without = evaluate_join(query, {"A": rows, "B": rows}, apply_selections=False)
        assert with_selection.match_count == 1  # only A=5 passes; joins B=1
        # Without the A.temp>4 selection the cross pairs with diff>0 remain.
        assert without.match_count >= with_selection.match_count

    def test_empty_relation_empty_result(self):
        query = parse_query("SELECT A.temp FROM s A, s B WHERE A.temp > B.temp ONCE")
        result = evaluate_join(query, {"A": [], "B": make_rows([1.0])})
        assert result.match_count == 0 and result.rows == []
        assert result.all_contributing_nodes() == set()

    def test_contributing_nodes_per_alias(self):
        query = parse_query("SELECT A.temp FROM s A, s B WHERE A.temp - B.temp > 2 ONCE")
        rows = make_rows([0.0, 5.0])
        result = evaluate_join(query, {"A": rows, "B": rows})
        assert result.contributing_nodes("A") == {2}
        assert result.contributing_nodes("B") == {1}
        assert result.all_contributing_nodes() == {1, 2}
        with pytest.raises(QueryError):
            result.contributing_nodes("Z")

    def test_aggregate_min_distance(self):
        query = parse_query(
            "SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM s A, s B "
            "WHERE A.temp - B.temp > 1 ONCE"
        )
        rows = [
            Row(1, {"temp": 10.0, "x": 0.0, "y": 0.0}),
            Row(2, {"temp": 5.0, "x": 3.0, "y": 4.0}),
            Row(3, {"temp": 5.0, "x": 6.0, "y": 8.0}),
        ]
        result = evaluate_join(query, {"A": rows, "B": rows})
        assert result.row_count == 1
        assert list(result.rows[0].values()) == [pytest.approx(5.0)]

    def test_aggregate_over_empty_result_is_empty(self):
        query = parse_query("SELECT MIN(A.temp) FROM s A, s B WHERE A.temp - B.temp > 99 ONCE")
        rows = make_rows([1.0, 2.0])
        result = evaluate_join(query, {"A": rows, "B": rows})
        assert result.rows == []

    def test_count_star_over_empty_result_is_zero(self):
        query = parse_query("SELECT COUNT(*) FROM s A, s B WHERE A.temp - B.temp > 99 ONCE")
        rows = make_rows([1.0, 2.0])
        result = evaluate_join(query, {"A": rows, "B": rows})
        assert result.rows == [{"COUNT(*)": 0.0}]

    def test_three_way_join(self):
        query = parse_query(
            "SELECT A.temp FROM s A, s B, s C "
            "WHERE A.temp - B.temp > 1 AND B.temp - C.temp > 1 ONCE"
        )
        rows = make_rows([1.0, 3.0, 5.0])
        result = evaluate_join(query, {"A": rows, "B": rows, "C": rows})
        assert sorted(result.combinations) == [(3, 2, 1)]

    def test_signature_is_order_independent(self):
        query = parse_query("SELECT A.temp FROM s A, s B WHERE A.temp != B.temp ONCE")
        rows = make_rows([1.0, 2.0])
        a = evaluate_join(query, {"A": rows, "B": rows})
        b = evaluate_join(query, {"A": list(reversed(rows)), "B": rows})
        assert a.signature() == b.signature()

    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(st.floats(min_value=-20, max_value=20, allow_nan=False), min_size=0, max_size=8),
        st.floats(min_value=-5, max_value=5, allow_nan=False),
    )
    def test_matches_brute_force_random(self, temps, threshold):
        query = parse_query(
            f"SELECT A.temp FROM s A, s B WHERE |A.temp - B.temp| < {threshold} ONCE"
        )
        rows = make_rows(temps)
        result = evaluate_join(query, {"A": rows, "B": rows})
        brute = sorted(
            (a.node_id, b.node_id)
            for a, b in itertools.product(rows, rows)
            if abs(a.values["temp"] - b.values["temp"]) < threshold
        )
        assert sorted(result.combinations) == brute


class TestConservativeSemijoin:
    def cells_for(self, values, width=0.5):
        return [
            CellBounds({"temp": v - width / 2}, {"temp": v + width / 2}) for v in values
        ]

    def test_survivors_cover_exact_joiners(self):
        query = parse_query("SELECT A.temp FROM s A, s B WHERE A.temp - B.temp > 2 ONCE")
        values = [0.0, 1.0, 3.5, 9.0]
        survivors = conservative_semijoin(
            query, {"A": self.cells_for(values), "B": self.cells_for(values)}
        )
        # Exact joiners: A index 3 (9.0) joins B 0,1,2; A index 2 (3.5) joins B 0,1.
        assert {2, 3} <= survivors["A"]
        assert {0, 1} <= survivors["B"]

    def test_definitely_disjoint_pairs_pruned(self):
        query = parse_query("SELECT A.temp FROM s A, s B WHERE |A.temp - B.temp| < 1 ONCE")
        survivors = conservative_semijoin(
            query,
            {"A": self.cells_for([0.0]), "B": self.cells_for([50.0])},
        )
        assert survivors["A"] == set() and survivors["B"] == set()

    def test_empty_side_empty_everything(self):
        query = parse_query("SELECT A.temp FROM s A, s B WHERE A.temp > B.temp ONCE")
        survivors = conservative_semijoin(query, {"A": self.cells_for([1.0]), "B": []})
        assert survivors == {"A": set(), "B": set()}

    def test_single_relation_rejected(self):
        query = parse_query("SELECT temp FROM sensors ONCE")
        with pytest.raises(QueryError):
            conservative_semijoin(query, {"sensors": []})

    def test_three_way_semijoin(self):
        query = parse_query(
            "SELECT A.temp FROM s A, s B, s C "
            "WHERE A.temp - B.temp > 2 AND B.temp - C.temp > 2 ONCE"
        )
        cells = self.cells_for([0.0, 3.0, 6.0], width=0.1)
        survivors = conservative_semijoin(query, {"A": cells, "B": cells, "C": cells})
        assert survivors["A"] == {2}
        assert survivors["B"] == {1}
        assert survivors["C"] == {0}

    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(st.floats(min_value=-20, max_value=20, allow_nan=False), min_size=1, max_size=6),
        st.lists(st.floats(min_value=-20, max_value=20, allow_nan=False), min_size=1, max_size=6),
        st.floats(min_value=0.1, max_value=5, allow_nan=False),
        st.floats(min_value=0.05, max_value=2),
    )
    def test_no_false_negatives_random(self, temps_a, temps_b, threshold, width):
        """Invariant 4 of DESIGN.md: conservative semijoin never prunes a
        cell that contains an actually-joining value."""
        query = parse_query(
            f"SELECT A.temp FROM s A, s B WHERE |A.temp - B.temp| < {threshold} ONCE"
        )
        rows_a, rows_b = make_rows(temps_a), make_rows(temps_b)
        exact = evaluate_join(query, {"A": rows_a, "B": rows_b})
        cells_a = self.cells_for(temps_a, width)
        cells_b = self.cells_for(temps_b, width)
        survivors = conservative_semijoin(query, {"A": cells_a, "B": cells_b})
        for node_id in exact.contributing_nodes("A"):
            assert (node_id - 1) in survivors["A"]
        for node_id in exact.contributing_nodes("B"):
            assert (node_id - 1) in survivors["B"]
