"""Harness tests: cell registry, cache keys, on-disk caching, assembly
checks, and the ``python -m repro.bench`` CLI."""

import json
import pickle

import pytest

from repro.bench.__main__ import main as bench_main
from repro.bench.cache import (
    CACHE_DIR_ENV,
    ResultCache,
    cache_key,
    code_fingerprint,
)
from repro.bench.harness import (
    _assemble_loss,
    _assemble_shards,
    _assemble_variance,
    deployment_shard_spec,
    experiment_specs,
    run_experiments,
    run_sharded_deployment,
    select_specs,
)
from repro.bench.reporting import ExperimentSeries
from repro.errors import ProtocolError

NODES = 60


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_covers_every_figure_and_study(self):
        specs = experiment_specs(NODES)
        names = set(specs)
        for required in (
            "fig10_33", "fig10_60", "fig11_33", "fig11_60", "fig12", "fig13",
            "fig14", "fig15", "fig16", "compression_table", "packet_size",
            "response_time", "ablation", "placement", "memory", "generality",
            "related_work", "continuous", "variance", "resolution",
            "bs_position", "loss", "failure", "concurrency", "churn",
            "scale",
        ):
            assert required in names

    def test_cells_are_pinned_picklable_and_json_clean(self):
        import repro.bench.experiments as experiments

        for spec in experiment_specs(NODES).values():
            assert spec.cells, spec.name
            for cell in spec.cells:
                assert cell.experiment == spec.name
                assert callable(getattr(experiments, cell.func))
                pickle.loads(pickle.dumps(cell))
                # Canonical JSON must round-trip the kwargs unchanged.
                kwargs = cell.call_kwargs
                assert json.loads(json.dumps(kwargs)) == kwargs

    def test_sweep_experiments_have_one_cell_per_point(self):
        specs = experiment_specs(NODES)
        assert len(specs["fig10_33"].cells) == 8
        assert len(specs["fig13"].cells) == 5
        assert len(specs["variance"].cells) == 5
        assert len(specs["loss"].cells) == 5
        assert len(specs["fig16"].cells) == 1

    def test_select_by_glob(self):
        specs = experiment_specs(NODES)
        names = [spec.name for spec in select_specs(specs, ["fig10*", "loss"])]
        assert names == ["fig10_33", "fig10_60", "loss"]
        assert len(select_specs(specs, None)) == len(specs)

    def test_unknown_pattern_raises(self):
        specs = experiment_specs(NODES)
        with pytest.raises(ValueError, match="no experiment matches"):
            select_specs(specs, ["fig99*"])


# ---------------------------------------------------------------------------
# Cache keys + store
# ---------------------------------------------------------------------------


class TestCache:
    def test_key_is_deterministic_and_parameter_sensitive(self):
        fingerprint = code_fingerprint()
        a = cache_key({"func": "f", "kwargs": {"x": 1}}, fingerprint)
        b = cache_key({"func": "f", "kwargs": {"x": 1}}, fingerprint)
        c = cache_key({"func": "f", "kwargs": {"x": 2}}, fingerprint)
        d = cache_key({"func": "f", "kwargs": {"x": 1}}, "other-fingerprint")
        assert a == b
        assert len({a, c, d}) == 3

    def test_fingerprint_tracks_version_and_constants(self, monkeypatch):
        import repro
        import repro.constants

        base = code_fingerprint()
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert code_fingerprint() != base
        monkeypatch.undo()
        monkeypatch.setattr(repro.constants, "PAPER_NODE_COUNT", 7)
        assert code_fingerprint() != base

    def test_fingerprint_tracks_interpreter(self, monkeypatch):
        import repro.bench.cache as cache_mod

        base = code_fingerprint()
        monkeypatch.setattr(
            cache_mod,
            "_interpreter_fingerprint",
            lambda: {"python": [9, 99], "implementation": "other",
                     "platform": "plan9", "machine": "pdp11"},
        )
        assert code_fingerprint() != base

    def test_interpreter_fingerprint_names_this_runtime(self):
        import sys

        from repro.bench.cache import _interpreter_fingerprint

        fingerprint = _interpreter_fingerprint()
        assert fingerprint["python"] == list(sys.version_info[:2])
        assert fingerprint["implementation"] == sys.implementation.name
        assert fingerprint["platform"] == sys.platform

    def test_store_round_trip_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"value": 1})
        assert cache.get("ab" * 32) == {"value": 1}
        assert len(cache) == 1
        assert cache.clear() == 1
        assert cache.get("ab" * 32) is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("cd" * 32, {"value": 1})
        path.write_text("{not json")
        assert cache.get("cd" * 32) is None

    def test_empty_cache_is_still_truthy(self, tmp_path):
        # Regression guard: __len__ == 0 must never disable `if cache:` paths.
        assert bool(ResultCache(tmp_path / "nothing-here"))


# ---------------------------------------------------------------------------
# Runs + caching behaviour
# ---------------------------------------------------------------------------


class TestRunExperiments:
    def test_warm_cache_skips_all_cells(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_experiments(
            ["fig12"], node_count=NODES, jobs=1, cache_dir=cache_dir
        )
        assert cold.manifest["cached_cells"] == 0
        warm = run_experiments(
            ["fig12"], node_count=NODES, jobs=1, cache_dir=cache_dir
        )
        assert warm.manifest["cached_cells"] == warm.manifest["total_cells"] == 3
        assert warm.series == cold.series

    def test_calibration_results_are_cached_cells(self, tmp_path):
        from repro.bench.workloads import _cached_calibration

        # Drop the in-process memo so the run has to consult the disk layer.
        _cached_calibration.cache_clear()
        cache_dir = tmp_path / "cache"
        run_experiments(["fig12"], node_count=NODES, jobs=1, cache_dir=cache_dir)
        entries = [
            json.loads(path.read_text()) for path in cache_dir.glob("*/*.json")
        ]
        thresholds = [e for e in entries if "threshold" in e]
        assert thresholds, "calibrations should be cached alongside cells"
        # The env hook must be restored after the run.
        import os

        assert CACHE_DIR_ENV not in os.environ or os.environ[
            CACHE_DIR_ENV
        ] != str(cache_dir)

    def test_manifest_records_cells_in_sweep_order(self, tmp_path):
        run = run_experiments(
            ["fig12"], node_count=NODES, jobs=1, cache_dir=None
        )
        manifest = run.manifest
        assert manifest["schema"] == 1
        assert manifest["total_cells"] == 3
        assert [c["experiment"] for c in manifest["cells"]] == ["fig12"] * 3
        assert [c["kwargs"]["totals"] for c in manifest["cells"]] == [[5], [4], [3]]
        for cell in manifest["cells"]:
            assert set(cell) >= {"func", "kwargs", "key", "cached", "elapsed_s"}

    def test_progress_reports_every_cell(self):
        lines = []
        run_experiments(
            ["fig12"], node_count=NODES, jobs=1, cache_dir=None,
            progress=lines.append,
        )
        assert len(lines) == 3
        assert lines[0].startswith("[1/3] fig12[")

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_experiments(["fig12"], node_count=NODES, jobs=0)


# ---------------------------------------------------------------------------
# Assemblers
# ---------------------------------------------------------------------------


def _loss_part(loss_rate, matches):
    series = ExperimentSeries(
        "loss", "t", ["loss_rate", "algorithm", "matches"]
    )
    series.add_row(loss_rate, "sens-join", matches)
    series.add_row(loss_rate, "external-join", matches)
    return series


class TestAssemblers:
    def test_loss_assembler_checks_cross_rate_exactness(self):
        good = _assemble_loss([_loss_part(0.0, 10), _loss_part(0.1, 10)])
        assert len(good.rows) == 4
        with pytest.raises(ProtocolError, match="changed under loss"):
            _assemble_loss([_loss_part(0.0, 10), _loss_part(0.1, 11)])

    def test_variance_assembler_recomputes_summary_note(self):
        parts = []
        for seed, savings in ((0, 50.0), (1, 60.0)):
            part = ExperimentSeries("variance", "t", ["seed", "savings_pct"])
            part.add_row(seed, savings)
            part.notes.append(f"savings mean {savings:.1f}% +- 0.0% over 1 seeds")
            parts.append(part)
        merged = _assemble_variance(parts)
        assert merged.notes == ["savings mean 55.0% +- 5.0% over 2 seeds"]

    def test_concat_rejects_diverging_columns(self):
        from repro.bench.harness import _assemble_concat

        a = ExperimentSeries("x", "t", ["col"])
        b = ExperimentSeries("x", "t", ["other"])
        with pytest.raises(ProtocolError, match="diverged"):
            _assemble_concat([a, b])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_list(self, capsys):
        assert bench_main(["list", "--nodes", "100"]) == 0
        out = capsys.readouterr().out
        assert "fig10_33" in out and "loss" in out and "cells" in out

    def test_run_requires_selection(self, capsys):
        assert bench_main(["run"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_run_report_clear_cache_cycle(self, tmp_path, capsys):
        results = tmp_path / "results"
        out = tmp_path / "report.txt"
        code = bench_main([
            "run", "fig12", "--nodes", str(NODES), "--jobs", "1",
            "--results-dir", str(results), "--out", str(out),
        ])
        assert code == 0
        assert (results / "fig12.csv").exists()
        assert "== fig12:" in out.read_text()

        manifest = json.loads((results / "run_manifest.json").read_text())
        assert manifest["node_count"] == NODES
        assert manifest["total_cells"] == 3

        capsys.readouterr()
        assert bench_main(["report", "--results-dir", str(results)]) == 0
        assert "== fig12:" in capsys.readouterr().out

        assert bench_main([
            "run", "--clear-cache", "--results-dir", str(results),
        ]) == 0
        assert "cache cleared" in capsys.readouterr().out
        assert len(ResultCache(results / ".cache")) == 0

    def test_report_without_run_fails_cleanly(self, tmp_path, capsys):
        assert bench_main(["report", "--results-dir", str(tmp_path)]) == 2
        assert "run" in capsys.readouterr().err

    def test_unknown_experiment_is_an_error(self, tmp_path, capsys):
        code = bench_main([
            "run", "nope*", "--results-dir", str(tmp_path), "--nodes", "60",
        ])
        assert code == 2
        assert "no experiment matches" in capsys.readouterr().err

    def test_report_on_corrupt_bundle_fails_cleanly(self, tmp_path, capsys):
        (tmp_path / "series.json").write_text("{truncated by a cleared dir")
        assert bench_main(["report", "--results-dir", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "not valid JSON" in err and "Traceback" not in err

    def test_report_on_non_list_bundle_fails_cleanly(self, tmp_path, capsys):
        (tmp_path / "series.json").write_text('{"experiment": "x"}')
        assert bench_main(["report", "--results-dir", str(tmp_path)]) == 2
        assert "series list" in capsys.readouterr().err

    def test_report_on_malformed_entry_fails_cleanly(self, tmp_path, capsys):
        (tmp_path / "series.json").write_text(json.dumps([{"bogus": 1}]))
        assert bench_main(["report", "--results-dir", str(tmp_path)]) == 2
        assert "malformed series entry" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Zero-cell guards
# ---------------------------------------------------------------------------


class TestZeroCellGuards:
    def test_assemble_concat_rejects_zero_series(self):
        from repro.bench.harness import _assemble_concat

        with pytest.raises(ValueError, match="zero cell series"):
            _assemble_concat([])

    def test_run_experiments_names_zero_cell_experiments(self, monkeypatch):
        import repro.bench.harness as harness
        from repro.bench.harness import ExperimentSpec

        def fake_specs(node_count=None):
            return {"hollow": ExperimentSpec("hollow", "no cells", [])}

        monkeypatch.setattr(harness, "experiment_specs", fake_specs)
        with pytest.raises(ValueError, match="zero cells: hollow"):
            run_experiments(None, node_count=NODES)


class TestSharding:
    """Sharded deployments: deterministic partition, gated merge."""

    def test_scale_experiment_registered_with_ladder_cells(self):
        from repro.bench.experiments import scale_node_counts

        specs = experiment_specs(600)
        scale = specs["scale"]
        assert len(scale.cells) == len(scale_node_counts(600)) * 2
        counts = [cell.call_kwargs["node_counts"][0] for cell in scale.cells]
        assert sorted(set(counts)) == [1000, 5000, 10000]
        routings = {cell.call_kwargs["routings"][0] for cell in scale.cells}
        assert routings == {"flat", "cluster"}

    def test_shard_spec_cells_are_pinned_and_picklable(self):
        spec = deployment_shard_spec(400, shard_count=3, seed=2, routing="cluster")
        assert len(spec.cells) == 3
        for index, cell in enumerate(spec.cells):
            kwargs = cell.call_kwargs
            assert kwargs["shard_index"] == index
            assert kwargs["shard_count"] == 3
            assert kwargs["node_count"] == 400
            assert kwargs["routing"] == "cluster"
            pickle.dumps(cell)
            json.dumps(kwargs)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError, match="shard_count"):
            deployment_shard_spec(400, shard_count=0)

    def test_merge_invariant_under_shard_count(self):
        """Totals are identical however the deployment is partitioned."""
        from repro.bench.experiments import scale_shard

        merged = {}
        for shard_count in (1, 3):
            parts = [
                scale_shard(300, seed=0, shard_index=i, shard_count=shard_count)
                for i in range(shard_count)
            ]
            series = _assemble_shards(parts)
            totals = series.rows[-1]
            col = series.columns.index
            assert totals[col("shard")] == -1
            merged[shard_count] = (
                totals[col("nodes")],
                totals[col("subtrees")],
                totals[col("max_depth")],
                totals[col("tx_packets")],
                totals[col("energy")],
                totals[col("id_sum")],
            )
        assert merged[1] == merged[3]
        assert merged[1][0] == 300
        assert merged[1][5] == 300 * 301 // 2

    def test_merge_gate_catches_missing_shard(self):
        from repro.bench.experiments import scale_shard

        parts = [
            scale_shard(300, seed=0, shard_index=i, shard_count=3)
            for i in range(3)
        ]
        with pytest.raises(ProtocolError, match="shard cells disagree"):
            _assemble_shards(parts[:2])

    def test_merge_gate_catches_duplicated_shard(self):
        from repro.bench.experiments import scale_shard

        parts = [
            scale_shard(300, seed=0, shard_index=i, shard_count=3)
            for i in range(3)
        ]
        parts[1] = parts[0]  # same slice twice, one slice lost
        with pytest.raises(ProtocolError, match="merge incomplete"):
            _assemble_shards(parts)

    def test_scale_shard_validation(self):
        from repro.bench.experiments import scale_shard

        with pytest.raises(ValueError, match="shard_index"):
            scale_shard(100, shard_index=4, shard_count=4)
        with pytest.raises(ValueError, match="deployment"):
            scale_shard(100, deployment="ring")

    def test_run_sharded_deployment_caches_and_merges(self, tmp_path):
        cold = run_sharded_deployment(
            300, 2, seed=0, jobs=1, cache_dir=tmp_path / "cache"
        )
        warm = run_sharded_deployment(
            300, 2, seed=0, jobs=1, cache_dir=tmp_path / "cache"
        )
        assert cold.manifest["cached_cells"] == 0
        assert warm.manifest["cached_cells"] == 2
        assert cold.series[0].rows == warm.series[0].rows
        # 2 shard rows + the merge row.
        assert len(cold.series[0].rows) == 3

    def test_shard_cli_smoke(self, tmp_path, capsys):
        code = bench_main(
            [
                "shard", "--nodes", "200", "--shards", "2",
                "--results-dir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "200 nodes over 2 shard(s)" in out
        assert (tmp_path / "shard.csv").exists()
        assert (tmp_path / "shard_manifest.json").exists()
        manifest = json.loads((tmp_path / "shard_manifest.json").read_text())
        assert manifest["shard_count"] == 2
