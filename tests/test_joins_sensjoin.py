"""SENS-Join protocol tests: exactness, Treecut, Selective Filter Forwarding."""

import pytest

from repro import constants
from repro.data.relations import SensorWorld
from repro.joins.external import ExternalJoin
from repro.joins.runner import run_snapshot
from repro.joins.sensjoin import (
    PHASE_COLLECTION,
    PHASE_FILTER,
    PHASE_FINAL,
    SensJoin,
    SensJoinConfig,
)
from repro.query.parser import parse_query


def run_both(network, world, query, config=None):
    external = run_snapshot(network, world, query, ExternalJoin(), tree_seed=11)
    sens = run_snapshot(
        network, world, query, SensJoin(config or SensJoinConfig()), tree_seed=11
    )
    return external, sens


class TestExactness:
    """DESIGN.md invariant 1: SENS-Join == external join, always."""

    THRESHOLDS = [0.3, 1.0, 2.5, 99.0]

    @pytest.mark.parametrize("threshold", THRESHOLDS)
    def test_equal_results_across_selectivities(
        self, small_network, small_world, tail_query, threshold
    ):
        external, sens = run_both(small_network, small_world, tail_query(threshold))
        assert external.result.signature() == sens.result.signature()

    def test_equal_results_q2_style(self, small_network, small_world, q2_style):
        external, sens = run_both(small_network, small_world, q2_style)
        assert external.result.signature() == sens.result.signature()

    def test_equal_results_q1_aggregate(self, small_network, small_world):
        query = parse_query(
            "SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM sensors A, sensors B "
            "WHERE A.temp - B.temp > 1.5 ONCE"
        )
        external, sens = run_both(small_network, small_world, query)
        assert external.result.signature() == sens.result.signature()

    def test_equal_results_heterogeneous(self, small_network):
        world = SensorWorld.two_relations(small_network, split=0.4, seed=5)
        query = parse_query(
            "SELECT A.hum, B.hum FROM rel_a A, rel_b B WHERE A.temp - B.temp > 0.8 ONCE"
        )
        external, sens = run_both(small_network, world, query)
        assert external.result.signature() == sens.result.signature()

    @pytest.mark.parametrize("representation", ["raw", "zlib", "bzip2"])
    def test_equal_results_any_representation(
        self, small_network, small_world, tail_query, representation
    ):
        config = SensJoinConfig(representation=representation)
        external, sens = run_both(small_network, small_world, tail_query(1.5), config)
        assert external.result.signature() == sens.result.signature()

    def test_equal_results_without_treecut(self, small_network, small_world, tail_query):
        config = SensJoinConfig(dmax_bytes=0)
        external, sens = run_both(small_network, small_world, tail_query(1.5), config)
        assert external.result.signature() == sens.result.signature()

    def test_equal_results_without_selective_forwarding(
        self, small_network, small_world, tail_query
    ):
        config = SensJoinConfig(subtree_limit_bytes=0)
        external, sens = run_both(small_network, small_world, tail_query(1.5), config)
        assert external.result.signature() == sens.result.signature()


class TestCostBehaviour:
    def test_selective_query_cheaper_than_external(
        self, small_network, small_world, tail_query
    ):
        external, sens = run_both(small_network, small_world, tail_query(2.5))
        assert sens.total_transmissions < external.total_transmissions

    def test_most_loaded_node_strongly_relieved(
        self, small_network, small_world, tail_query
    ):
        external, sens = run_both(small_network, small_world, tail_query(2.5))
        assert sens.max_node_transmissions() < external.max_node_transmissions()

    def test_collection_cost_independent_of_selectivity(
        self, small_network, small_world, tail_query
    ):
        """Fig. 15: phase-1a cost depends only on the join attributes."""
        _, selective = run_both(small_network, small_world, tail_query(3.0))
        _, unselective = run_both(small_network, small_world, tail_query(0.2))
        a = selective.per_phase_transmissions()[PHASE_COLLECTION]
        b = unselective.per_phase_transmissions()[PHASE_COLLECTION]
        assert a == b

    def test_final_phase_grows_with_result(self, small_network, small_world, tail_query):
        _, selective = run_both(small_network, small_world, tail_query(3.0))
        _, unselective = run_both(small_network, small_world, tail_query(0.2))
        assert (
            selective.per_phase_transmissions().get(PHASE_FINAL, 0)
            < unselective.per_phase_transmissions().get(PHASE_FINAL, 0)
        )

    def test_empty_filter_means_no_downstream_phases(
        self, small_network, small_world, tail_query
    ):
        _, sens = run_both(small_network, small_world, tail_query(9999.0))
        phases = sens.per_phase_transmissions()
        assert phases.get(PHASE_FILTER, 0) == 0
        assert phases.get(PHASE_FINAL, 0) == 0
        assert sens.details["filter_points"] == 0

    def test_response_time_at_most_twice_external(
        self, small_network, small_world, tail_query
    ):
        """§VII: the response time is upper bounded by ~2x the external join.

        Our timing model adds explicit per-phase epoch scheduling, which can
        overshoot the paper's serialization-only bound slightly at small
        scales — hence the 2.25 tolerance (see EXPERIMENTS.md, E10).
        """
        external, sens = run_both(small_network, small_world, tail_query(1.0))
        assert sens.response_time_s <= 2.25 * external.response_time_s + 1e-9


class TestTreecut:
    def test_treecut_produces_exits_and_proxies(
        self, small_network, small_world, tail_query
    ):
        _, sens = run_both(small_network, small_world, tail_query(1.5))
        assert sens.details["treecut_exited"] > 0
        assert sens.details["treecut_proxies"] > 0

    def test_disabling_treecut_removes_exits(self, small_network, small_world, tail_query):
        sens = run_snapshot(
            small_network, small_world, tail_query(1.5),
            SensJoin(SensJoinConfig(dmax_bytes=0)), tree_seed=11,
        )
        assert sens.details["treecut_exited"] == 0

    def test_dmax_bounds_proxy_memory(self, small_network, small_world, tail_query):
        """Invariant 8: proxy storage <= D_max per child (§IV-B)."""
        from repro.joins.base import ExecutionContext, TupleFormat
        from repro.routing.ctp import build_tree

        query = tail_query(1.5)
        tree = build_tree(small_network, seed=11)
        small_network.reset_accounting()
        small_world.take_snapshot(0.0)
        algo = SensJoin()
        context = ExecutionContext(small_network, tree, small_world, query)
        fmt = TupleFormat(query, small_world)
        states = {node_id: None for node_id in tree.node_ids}

        # Run the collection phase alone and inspect internal state.
        internal_states = {nid: __import__("repro.joins.sensjoin", fromlist=["_NodeState"])._NodeState() for nid in tree.node_ids}
        details = {}
        algo._collection_phase(context, fmt, internal_states, False, details)
        dmax = algo.config.dmax_bytes
        for node_id, state in internal_states.items():
            if node_id == tree.root or state.exited:
                continue
            children = len(tree.children(node_id))
            assert (
                len(state.proxy_records) * fmt.full_tuple_bytes
                <= dmax * max(children, 1)
            )

    def test_larger_dmax_cuts_more_nodes(self, small_network, small_world, tail_query):
        small_cut = run_snapshot(
            small_network, small_world, tail_query(1.5),
            SensJoin(SensJoinConfig(dmax_bytes=10)), tree_seed=11,
        )
        large_cut = run_snapshot(
            small_network, small_world, tail_query(1.5),
            SensJoin(SensJoinConfig(dmax_bytes=40)), tree_seed=11,
        )
        assert large_cut.details["treecut_exited"] >= small_cut.details["treecut_exited"]


class TestSelectiveFilterForwarding:
    def test_pruning_reduces_filter_bytes(self, small_network, small_world, tail_query):
        query = tail_query(2.5)
        pruned = run_snapshot(
            small_network, small_world, query, SensJoin(), tree_seed=11
        )
        unpruned = run_snapshot(
            small_network, small_world, query,
            SensJoin(SensJoinConfig(subtree_limit_bytes=0)), tree_seed=11,
        )
        pruned_bytes = pruned.stats.total_tx_bytes([PHASE_FILTER])
        unpruned_bytes = unpruned.stats.total_tx_bytes([PHASE_FILTER])
        assert pruned_bytes <= unpruned_bytes

    def test_subtrees_without_matches_not_reached(
        self, small_network, small_world, tail_query
    ):
        _, sens = run_both(small_network, small_world, tail_query(2.5))
        # With a selective filter some subtrees must have been pruned or
        # the filter never reached them at all.
        receivers = sum(
            1
            for node_id in small_network.sensor_node_ids
            if sens.stats.node_rx_packets(node_id) > 0
        )
        assert receivers < len(small_network.sensor_node_ids)


class TestDiagnostics:
    def test_false_positives_counted(self, small_network, small_world, tail_query):
        _, sens = run_both(small_network, small_world, tail_query(1.5))
        shipped = sens.details["final_tuples_shipped"]
        contributors = len(sens.result.all_contributing_nodes())
        assert sens.details["false_positives"] == shipped - contributors

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SensJoinConfig(dmax_bytes=-1)
        with pytest.raises(ValueError):
            SensJoinConfig(representation="lzma")

    def test_algorithm_name_reflects_representation(self):
        assert SensJoin().name == "sens-join"
        assert SensJoin(SensJoinConfig(representation="raw")).name == "sens-join[raw]"
