"""Join-filter construction tests."""

import pytest

from repro.joins.base import TupleFormat, node_tuple
from repro.joins.filterbuild import build_join_filter
from repro.query.evaluate import Row, evaluate_join
from repro.query.parser import parse_query


@pytest.fixture()
def setup(small_world, tail_query):
    query = tail_query(1.5)
    fmt = TupleFormat(query, small_world)
    points = set()
    rows = []
    for node_id in small_world.network.sensor_node_ids:
        record, flags = node_tuple(fmt, node_id)
        if record is None:
            continue
        join_values = {k: record.values[k] for k in fmt.join_attributes}
        points.add((flags, fmt.quantizer.encode(join_values)))
        rows.append(Row(node_id, dict(record.values)))
    return query, fmt, frozenset(points), rows


def test_filter_is_subset_of_points(setup):
    query, fmt, points, rows = setup
    join_filter = build_join_filter(fmt, points)
    zs = {z for _, z in points}
    assert all(z in zs for _, z in join_filter)


def test_filter_has_no_false_negatives(setup):
    """Every node that actually joins must find its point in the filter
    with the right role flag (the exactness guarantee's key lemma)."""
    query, fmt, points, rows = setup
    join_filter = build_join_filter(fmt, points)
    filter_flags = {}
    for flags, z in join_filter:
        filter_flags[z] = filter_flags.get(z, 0) | flags
    exact = evaluate_join(query, {"A": rows, "B": rows}, apply_selections=False)
    rows_by_id = {row.node_id: row for row in rows}
    for alias in ("A", "B"):
        bit = fmt.alias_bit(alias)
        for node_id in exact.contributing_nodes(alias):
            row = rows_by_id[node_id]
            z = fmt.quantizer.encode({k: row.values[k] for k in fmt.join_attributes})
            assert filter_flags.get(z, 0) & bit, (alias, node_id)


def test_roles_survive_independently():
    """In Q1-style conditions a hot node joins as A but not as B."""
    from repro.data.sensors import standard_catalog
    from repro.data.relations import SensorWorld

    query = parse_query(
        "SELECT A.hum, B.hum FROM sensors A, sensors B WHERE A.temp - B.temp > 5 ONCE"
    )

    class FakeWorld:
        pass

    # Minimal synthetic setup: three temperature cells far apart.
    # Use the real TupleFormat against a tiny fake world via standard catalog.
    import types

    world = types.SimpleNamespace(catalog=standard_catalog(100.0), network=None)
    fmt = TupleFormat.__new__(TupleFormat)
    fmt.query = query
    fmt.world = world
    fmt.bytes_per_attribute = 2
    fmt.aliases = ["A", "B"]
    fmt.join_attributes = ["temp"]
    fmt.full_attributes = ["hum", "temp"]
    from repro.codec.quantize import Quantizer

    fmt.quantizer = Quantizer.for_attributes(world.catalog, ["temp"])
    from repro.codec.quadtree import QuadtreeCodec

    fmt.codec = QuadtreeCodec.for_quantizer(fmt.quantizer, 2)

    cold = (0b11, fmt.quantizer.encode({"temp": 10.0}))
    hot = (0b11, fmt.quantizer.encode({"temp": 25.0}))
    join_filter = build_join_filter(fmt, [cold, hot])
    by_z = {z: flags for flags, z in join_filter}
    # hot joins only as A (hot - cold > 5); cold joins only as B.
    assert by_z[hot[1]] == 0b10
    assert by_z[cold[1]] == 0b01


def test_empty_points_empty_filter(setup):
    _, fmt, _, _ = setup
    assert build_join_filter(fmt, []) == frozenset()


def test_unselective_condition_keeps_everything(small_world):
    query = parse_query(
        "SELECT A.hum, B.hum FROM sensors A, sensors B WHERE A.temp - B.temp > -9999 ONCE"
    )
    fmt = TupleFormat(query, small_world)
    points = set()
    for node_id in small_world.network.sensor_node_ids:
        record, flags = node_tuple(fmt, node_id)
        join_values = {k: record.values[k] for k in fmt.join_attributes}
        points.add((flags, fmt.quantizer.encode(join_values)))
    join_filter = build_join_filter(fmt, frozenset(points))
    assert {z for _, z in join_filter} == {z for _, z in points}
