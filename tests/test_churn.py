"""Churn-resilience tests: the churn model, tree self-healing, broker ladder.

The load-bearing guarantees under test:

* a :class:`~repro.sim.faults.ChurnModel` is pure data — materializing it
  against the same topology always yields the same :class:`FaultPlan`, and
  both round-trip exactly through their JSON forms;
* :func:`~repro.routing.ctp.reattach_tree` heals departures *incrementally*:
  orphaned subtrees graft onto surviving neighbours, rejoined nodes are
  adopted, every edge of the healed tree is a live radio link, and the
  beacon cost is charged to the energy ledger;
* under continuous churn the :class:`~repro.service.broker.QueryBroker`
  terminates every admitted query with a recall-stamped outcome whose
  result set is a subset of the pre-churn lossless oracle, and identical
  seeds replay to identical reports.
"""

from __future__ import annotations

import pytest

from repro.joins.base import ExecutionContext, oracle_result
from repro.query.parser import parse_query
from repro.routing.ctp import build_tree, reattach_tree
from repro.service import BrokerConfig, DeadlinePolicy, QueryBroker, QueryRequest
from repro.sim.faults import (
    LOSS_BURST,
    NODE_CRASH,
    NODE_MOVE,
    NODE_REJOIN,
    ChurnModel,
    Fault,
    FaultPlan,
)
from repro.sim.network import BASE_STATION_ID


def _tail(threshold: float):
    return parse_query(
        "SELECT A.hum, B.hum FROM sensors A, sensors B "
        f"WHERE A.temp - B.temp > {threshold} ONCE"
    )


@pytest.fixture()
def deployment(make_deployment):
    """Fresh per test: churn and repairs mutate the topology."""
    network, world = make_deployment(node_count=60, seed=2, area_side_m=210.0)
    tree = build_tree(network, seed=2)
    return network, world, tree


# -- churn model --------------------------------------------------------------


MODEL = ChurnModel(
    departure_rate=0.5,
    rejoin_delay_s=0.4,
    rejoin_jitter_m=8.0,
    move_rate=0.2,
    move_step_m=15.0,
    horizon_s=2.0,
    seed=11,
)


def test_churn_model_materializes_deterministically(deployment):
    network = deployment[0]
    first = MODEL.materialize(network)
    second = MODEL.materialize(network)
    assert list(first) == list(second)
    reseeded = ChurnModel(
        departure_rate=0.5, rejoin_delay_s=0.4, rejoin_jitter_m=8.0,
        move_rate=0.2, move_step_m=15.0, horizon_s=2.0, seed=12,
    ).materialize(network)
    assert list(first) != list(reseeded)


def test_churn_model_round_trips_through_json(deployment):
    assert ChurnModel.from_dict(MODEL.to_dict()) == MODEL
    plan = MODEL.materialize(deployment[0])
    assert plan, "the model should generate at least one fault"
    assert list(FaultPlan.from_dict(plan.to_dict())) == list(plan)


def test_disabled_model_is_falsy_and_empty(deployment):
    quiet = ChurnModel()
    assert not quiet
    assert not quiet.materialize(deployment[0])
    assert ChurnModel.from_departure_fraction(0.0) == ChurnModel()


def test_rejoins_follow_their_departures(deployment):
    network = deployment[0]
    plan = MODEL.materialize(network)
    departures = {f.node_a: f.time_s for f in plan if f.kind == NODE_CRASH}
    rejoins = [f for f in plan if f.kind == NODE_REJOIN]
    assert departures and rejoins
    for fault in rejoins:
        assert fault.node_a in departures
        assert fault.time_s > departures[fault.node_a]
        node = network.nodes[fault.node_a]
        assert abs(fault.x - node.x) <= MODEL.rejoin_jitter_m
        assert abs(fault.y - node.y) <= MODEL.rejoin_jitter_m


def test_departure_cap_respected(deployment):
    network = deployment[0]
    flood = ChurnModel(
        departure_rate=50.0, horizon_s=2.0, seed=3, max_departed_fraction=0.25
    )
    plan = flood.materialize(network)
    crashed = {f.node_a for f in plan if f.kind == NODE_CRASH}
    assert len(crashed) <= int(0.25 * len(network.sensor_node_ids)) + 1
    assert BASE_STATION_ID not in crashed


def test_from_departure_fraction_validation():
    with pytest.raises(ValueError):
        ChurnModel.from_departure_fraction(1.0)
    with pytest.raises(ValueError):
        ChurnModel(departure_rate=-1.0)
    with pytest.raises(ValueError):
        ChurnModel(move_rate=0.1)  # mobility needs move_step_m


# -- incremental tree self-healing -------------------------------------------


def _assert_valid_tree(network, tree):
    """Every alive sensor is attached and every edge is a live link."""
    alive = set(network.sensor_node_ids)
    assert set(tree.node_ids) == alive | {BASE_STATION_ID}
    for node_id in alive:
        assert network.link_up(node_id, tree.parent(node_id))


def test_reattach_after_single_departure(deployment):
    network, _, tree = deployment
    victim = next(n for n in tree.node_ids if n != tree.root and not tree.is_leaf(n))
    orphans = set(tree.children(victim))
    energy_before = network.total_energy()
    network.fail_node(victim)
    report = reattach_tree(network, tree, seed=2)
    _assert_valid_tree(network, report.tree)
    assert orphans <= report.reattached
    assert not report.orphaned
    assert report.beacons > 0
    assert network.total_energy() > energy_before, "repair beacons must be charged"


def test_reattach_after_cascading_departures(deployment):
    network, _, tree = deployment
    victims = [n for n in tree.node_ids if n != tree.root and not tree.is_leaf(n)][:3]
    for victim in victims:
        network.fail_node(victim)
    report = reattach_tree(network, tree, seed=2)
    _assert_valid_tree(network, report.tree)
    # Surviving parent links are kept verbatim — the repair is localized.
    for node_id in network.sensor_node_ids:
        if node_id not in report.reattached:
            assert report.tree.parent(node_id) == tree.parent(node_id)


def test_reattach_adopts_rejoined_node_at_new_position(deployment):
    network, _, tree = deployment
    victim = network.sensor_node_ids[5]
    node = network.nodes[victim]
    network.fail_node(victim)
    healed = reattach_tree(network, tree, seed=2).tree
    assert victim not in healed
    network.revive_node(victim, x=node.x + 12.0, y=node.y - 9.0)
    report = reattach_tree(network, healed, seed=2)
    assert victim in report.adopted
    _assert_valid_tree(network, report.tree)


def test_reattach_is_deterministic(deployment):
    network, _, tree = deployment
    victims = [n for n in tree.node_ids if n != tree.root][:4]
    for victim in victims:
        network.fail_node(victim)
    first = reattach_tree(network, tree, seed=2)
    second = reattach_tree(network, tree, seed=2)
    for node_id in network.sensor_node_ids:
        assert first.tree.parent(node_id) == second.tree.parent(node_id)
    assert first.beacons == second.beacons


# -- broker under continuous churn -------------------------------------------


CHURN = ChurnModel.from_departure_fraction(
    0.2, horizon_s=4.0, seed=5, rejoin_delay_s=1.0, rejoin_jitter_m=10.0
)


def _workload(count=8):
    templates = [_tail(1.0), _tail(1.6), _tail(0.8)]
    return [
        QueryRequest(
            query_id=i, arrival_s=0.4 * i, template_index=i % 3,
            query=templates[i % 3],
        )
        for i in range(count)
    ]


def _run_churned(make_deployment, concurrency=8):
    network, world = make_deployment(node_count=60, seed=2, area_side_m=210.0)
    tree = build_tree(network, seed=2)
    broker = QueryBroker(
        network, world,
        BrokerConfig(
            concurrency=concurrency,
            share_work=concurrency > 1,
            deadline=DeadlinePolicy(seed=5),
        ),
        tree=tree, tree_seed=2, churn=CHURN,
    )
    return network, world, tree, broker.run(_workload())


def test_churned_broker_terminates_every_query(make_deployment):
    _, _, _, report = _run_churned(make_deployment)
    assert len(report.outcomes) == 8
    for outcome in report.outcomes:
        assert outcome.status in ("completed", "degraded", "shed")
        assert 0.0 <= outcome.recall <= 1.0
        assert outcome.attempts >= 1
    details = report.details
    assert details["churn_faults_applied"] > 0
    assert details["completed"] + details["degraded"] + details["shed"] == 8
    assert details["min_recall"] <= details["mean_recall"]


def test_churned_results_are_subsets_with_exact_recall(make_deployment):
    # The oracle is fixed pre-churn on an identical twin deployment (the
    # broker's own network mutates as faults land).
    network, world = make_deployment(node_count=60, seed=2, area_side_m=210.0)
    tree = build_tree(network, seed=2)
    world.take_snapshot(0.0)
    oracles = {}
    for request in _workload():
        context = ExecutionContext(
            network=network, tree=tree, world=world, query=request.query
        )
        oracles[request.query_id] = oracle_result(context)
    _, _, _, report = _run_churned(make_deployment)
    for outcome in report.outcomes:
        oracle = oracles[outcome.request.query_id]
        got = set(outcome.result.combinations)
        want = set(oracle.combinations)
        assert got <= want, "churn must lose matches, never invent them"
        expected = len(got & want) / oracle.match_count if oracle.match_count else 1.0
        assert outcome.recall == pytest.approx(expected)
        assert (outcome.status == "completed") == (outcome.recall == pytest.approx(1.0))


def test_churned_broker_replays_identically(make_deployment):
    def fingerprint(report):
        return [
            (
                o.request.query_id, o.status, o.attempts, o.completed_s,
                o.recall, o.energy_share_j, o.tx_share_packets,
                tuple(sorted(o.result.combinations)),
            )
            for o in report.outcomes
        ] + [tuple(sorted(report.details.items()))]

    first = _run_churned(make_deployment)[3]
    second = _run_churned(make_deployment)[3]
    assert fingerprint(first) == fingerprint(second)


def test_zero_churn_resilient_path_matches_plain_broker(make_deployment):
    """DeadlinePolicy alone (no churn) must not change any answer."""
    network, world = make_deployment(node_count=60, seed=2, area_side_m=210.0)
    tree = build_tree(network, seed=2)
    requests = _workload()
    plain = QueryBroker(
        network, world, BrokerConfig(concurrency=4), tree=tree
    ).run(requests)
    resilient = QueryBroker(
        network, world,
        BrokerConfig(concurrency=4, deadline=DeadlinePolicy(seed=5)),
        tree=tree, tree_seed=2,
    ).run(requests)
    for ref, out in zip(plain.outcomes, resilient.outcomes):
        assert out.result_set() == ref.result_set()
        assert out.status == "completed"
        assert out.recall == 1.0


def test_broker_rejects_loss_burst_plans(deployment):
    network, world, tree = deployment
    plan = FaultPlan([Fault(time_s=0.1, kind=LOSS_BURST, duration_s=0.5, loss_rate=0.9)])
    with pytest.raises(ValueError):
        QueryBroker(network, world, BrokerConfig(), tree=tree, churn=plan)


def test_fault_positions_round_trip():
    fault = Fault(time_s=0.25, kind=NODE_MOVE, node_a=7, x=12.5, y=-3.0)
    assert list(FaultPlan.from_dict(FaultPlan([fault]).to_dict())) == [fault]
    with pytest.raises(ValueError):
        Fault(time_s=0.1, kind=NODE_MOVE, node_a=7)  # position is mandatory
