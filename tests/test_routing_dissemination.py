"""Query-flooding tests."""

import pytest

from repro.routing.dissemination import QUERY_DISSEMINATION_PHASE, flood_query
from repro.sim.node import BASE_STATION_ID


def test_flood_reaches_every_node(small_network):
    reached = flood_query(small_network, 30)
    assert reached == set(small_network.node_ids)


def test_flood_costs_one_broadcast_per_node(small_network):
    flood_query(small_network, 30)
    stats = small_network.stats
    # 30 bytes fit one packet; every node (incl. the base station)
    # broadcasts exactly once.
    assert stats.total_tx_packets([QUERY_DISSEMINATION_PHASE]) == len(
        small_network.node_ids
    )


def test_flood_fragments_large_queries(small_network):
    flood_query(small_network, 100)  # 3 packets at 48 bytes
    assert small_network.stats.total_tx_packets() == 3 * len(small_network.node_ids)


def test_flood_does_not_cross_partitions(small_network):
    # Cut off one node completely.
    victim = small_network.sensor_node_ids[4]
    for neighbour in list(small_network.neighbours(victim)):
        small_network.fail_link(victim, neighbour)
    reached = flood_query(small_network, 30)
    assert victim not in reached
    assert reached == set(small_network.node_ids) - {victim}


def test_flood_custom_phase_label(small_network):
    flood_query(small_network, 10, phase="my-phase")
    assert small_network.stats.tx_packets_by_phase() == {
        "my-phase": len(small_network.node_ids)
    }


def test_negative_size_rejected(small_network):
    with pytest.raises(ValueError):
        flood_query(small_network, -1)


def test_zero_byte_flood_reaches_no_one(small_network):
    # A zero-byte query transmits nothing, so only the source "hears" it.
    reached = flood_query(small_network, 0)
    assert reached == {BASE_STATION_ID}
