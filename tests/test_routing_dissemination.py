"""Query-flooding tests."""

import pytest

from repro.routing.dissemination import (
    PIGGYBACK_HEADER_BYTES,
    QUERY_DISSEMINATION_PHASE,
    flood_batch,
    flood_query,
)
from repro.sim.node import BASE_STATION_ID


def test_flood_reaches_every_node(small_network):
    reached = flood_query(small_network, 30)
    assert reached == set(small_network.node_ids)


def test_flood_costs_one_broadcast_per_node(small_network):
    flood_query(small_network, 30)
    stats = small_network.stats
    # 30 bytes fit one packet; every node (incl. the base station)
    # broadcasts exactly once.
    assert stats.total_tx_packets([QUERY_DISSEMINATION_PHASE]) == len(
        small_network.node_ids
    )


def test_flood_fragments_large_queries(small_network):
    flood_query(small_network, 100)  # 3 packets at 48 bytes
    assert small_network.stats.total_tx_packets() == 3 * len(small_network.node_ids)


def test_flood_does_not_cross_partitions(small_network):
    # Cut off one node completely.
    victim = small_network.sensor_node_ids[4]
    for neighbour in list(small_network.neighbours(victim)):
        small_network.fail_link(victim, neighbour)
    reached = flood_query(small_network, 30)
    assert victim not in reached
    assert reached == set(small_network.node_ids) - {victim}


def test_flood_custom_phase_label(small_network):
    flood_query(small_network, 10, phase="my-phase")
    assert small_network.stats.tx_packets_by_phase() == {
        "my-phase": len(small_network.node_ids)
    }


def test_negative_size_rejected(small_network):
    with pytest.raises(ValueError):
        flood_query(small_network, -1)


def test_zero_byte_flood_reaches_no_one(small_network):
    # A zero-byte query transmits nothing, so only the source "hears" it.
    reached = flood_query(small_network, 0)
    assert reached == {BASE_STATION_ID}


def test_flood_batch_single_item_equals_flood_query(small_network, make_deployment):
    """One item means no piggybacking: no header, identical cost."""
    flood_batch(small_network, [30])
    batched = small_network.stats.total_tx_packets()
    batched_energy = small_network.total_energy()
    reference, _ = make_deployment(node_count=200, seed=11, area_side_m=383.0)
    flood_query(reference, 30)
    assert batched == reference.stats.total_tx_packets()
    assert batched_energy == pytest.approx(reference.total_energy())


def test_flood_batch_concatenates_with_headers(small_network, make_deployment):
    """N items flood once at sum(sizes) + N headers — cheaper than N floods."""
    sizes = [30, 25, 20]
    flood_batch(small_network, sizes)
    batched = small_network.stats.total_tx_packets()
    reference, _ = make_deployment(node_count=200, seed=11, area_side_m=383.0)
    for size in sizes:
        flood_query(reference, size)
    assert batched < reference.stats.total_tx_packets()
    # The payload equals one flood of the concatenation.
    single, _ = make_deployment(node_count=200, seed=11, area_side_m=383.0)
    flood_query(single, sum(sizes) + PIGGYBACK_HEADER_BYTES * len(sizes))
    assert batched == single.stats.total_tx_packets()


def test_flood_batch_drops_empty_items(small_network):
    reached = flood_batch(small_network, [0, 0, 30, 0])
    assert reached == set(small_network.node_ids)
    # A single surviving item needs no per-filter header.
    assert small_network.stats.total_tx_packets() == len(small_network.node_ids)


def test_flood_batch_all_empty_reaches_no_one(small_network):
    assert flood_batch(small_network, []) == {BASE_STATION_ID}
    assert flood_batch(small_network, [0, 0]) == {BASE_STATION_ID}
    assert small_network.stats.total_tx_packets() == 0


def test_flood_batch_validation(small_network):
    with pytest.raises(ValueError):
        flood_batch(small_network, [30, -1])
    with pytest.raises(ValueError):
        flood_batch(small_network, [30], header_bytes=-1)
