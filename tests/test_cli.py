"""CLI (python -m repro) tests."""

import pytest

from repro.__main__ import build_parser, main

SQL = "SELECT A.hum, B.hum FROM sensors A, sensors B WHERE A.temp - B.temp > 14 ONCE"


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_query_command(capsys):
    code, out, err = run_cli(
        capsys, "query", SQL, "--nodes", "150", "--seed", "3", "--limit", "2"
    )
    assert code == 0
    assert "sens-join" in out
    assert "transmissions" in out


def test_query_with_external_algorithm(capsys):
    code, out, _ = run_cli(
        capsys, "query", SQL, "--algorithm", "external-join", "--nodes", "150"
    )
    assert code == 0
    assert "external-join" in out


def test_explain_command(capsys):
    code, out, _ = run_cli(capsys, "explain", SQL, "--nodes", "150")
    assert code == 0
    assert "join attributes" in out
    assert "Treecut" in out


def test_compare_command(capsys):
    code, out, _ = run_cli(capsys, "compare", SQL, "--nodes", "150", "--seed", "3")
    assert code == 0
    assert "results identical: True" in out
    assert "saving" in out


def test_parse_error_reported_cleanly(capsys):
    code, out, err = run_cli(capsys, "query", "SELECT FROM nothing", "--nodes", "150")
    assert code == 2
    assert "error:" in err


def test_unknown_attribute_reported_cleanly(capsys):
    code, _, err = run_cli(
        capsys,
        "query",
        "SELECT A.wind FROM sensors A, sensors B WHERE A.temp > B.temp ONCE",
        "--nodes", "150",
    )
    assert code == 2
    assert "error:" in err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_help_names_every_registered_engine(capsys):
    """``python -m repro --help`` must list all engines in the registry —
    snapshot engines as ``--algorithm`` choices, stateful ones in the
    epilog (PR 5 bolted them on without surfacing them here)."""
    from repro.verify.generators import ENGINES

    with pytest.raises(SystemExit):
        build_parser().parse_args(["--help"])
    # argparse reflows the epilog and may wrap inside a hyphenated engine
    # name ("sens-\njoin"); undo the wrapping before matching.
    out = capsys.readouterr().out.replace("-\n", "-").replace("\n", " ")
    for engine in ENGINES:
        assert engine in out, f"--help does not mention engine {engine!r}"


def test_algorithm_choices_cover_snapshot_registry():
    from repro.joins.runner import snapshot_engine_names

    parser = build_parser()
    for engine in snapshot_engine_names():
        args = parser.parse_args(["query", SQL, "--algorithm", engine])
        assert args.algorithm == engine


def test_stateful_engine_rejected_as_algorithm(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["query", SQL, "--algorithm", "adaptive"])
    assert "invalid choice" in capsys.readouterr().err


def test_query_all_snapshot_engines_run(capsys):
    from repro.joins.runner import snapshot_engine_names

    for engine in snapshot_engine_names():
        code, out, _ = run_cli(
            capsys, "query", SQL, "--algorithm", engine, "--nodes", "150"
        )
        assert code == 0, engine
        assert "transmissions" in out, engine


def test_row_limit_truncates(capsys):
    sql = "SELECT A.hum, B.hum FROM sensors A, sensors B WHERE A.temp - B.temp > 5 ONCE"
    code, out, _ = run_cli(capsys, "query", sql, "--nodes", "150", "--limit", "1")
    assert code == 0
    if "more row(s)" in out:
        assert out.count("{") == 1
