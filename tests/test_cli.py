"""CLI (python -m repro) tests."""

import pytest

from repro.__main__ import build_parser, main

SQL = "SELECT A.hum, B.hum FROM sensors A, sensors B WHERE A.temp - B.temp > 14 ONCE"


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_query_command(capsys):
    code, out, err = run_cli(
        capsys, "query", SQL, "--nodes", "150", "--seed", "3", "--limit", "2"
    )
    assert code == 0
    assert "sens-join" in out
    assert "transmissions" in out


def test_query_with_external_algorithm(capsys):
    code, out, _ = run_cli(
        capsys, "query", SQL, "--algorithm", "external-join", "--nodes", "150"
    )
    assert code == 0
    assert "external-join" in out


def test_explain_command(capsys):
    code, out, _ = run_cli(capsys, "explain", SQL, "--nodes", "150")
    assert code == 0
    assert "join attributes" in out
    assert "Treecut" in out


def test_compare_command(capsys):
    code, out, _ = run_cli(capsys, "compare", SQL, "--nodes", "150", "--seed", "3")
    assert code == 0
    assert "results identical: True" in out
    assert "saving" in out


def test_parse_error_reported_cleanly(capsys):
    code, out, err = run_cli(capsys, "query", "SELECT FROM nothing", "--nodes", "150")
    assert code == 2
    assert "error:" in err


def test_unknown_attribute_reported_cleanly(capsys):
    code, _, err = run_cli(
        capsys,
        "query",
        "SELECT A.wind FROM sensors A, sensors B WHERE A.temp > B.temp ONCE",
        "--nodes", "150",
    )
    assert code == 2
    assert "error:" in err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_row_limit_truncates(capsys):
    sql = "SELECT A.hum, B.hum FROM sensors A, sensors B WHERE A.temp - B.temp > 5 ONCE"
    code, out, _ = run_cli(capsys, "query", sql, "--nodes", "150", "--limit", "1")
    assert code == 0
    if "more row(s)" in out:
        assert out.count("{") == 1
