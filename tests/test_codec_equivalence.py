"""Optimized codec kernels vs their pinned ``_reference_*`` twins.

Every hot path rewritten for the perf suite keeps its original
implementation in the same module; these sweeps pin the pair equivalent —
byte-identical outputs on valid inputs and identical error messages on
corrupt ones — across parameterized shape grids, hypothesis-driven random
inputs, and the degenerate shapes the rewrites special-case (empty sets,
zero-length bitstrings, single-dimension interleaves, maximum-depth
quadtrees).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import zcurve
from repro.codec.bits import BitReader, Bits, BitWriter, _ReferenceBitReader, _ReferenceBitWriter
from repro.codec.quadtree import QuadtreeCodec
from repro.errors import CodecError


# ---------------------------------------------------------------------------
# Z-curve interleave / deinterleave
# ---------------------------------------------------------------------------


SHAPES = [
    [1],                 # single dimension, single bit
    [7],                 # single dimension (pass-through path)
    [1, 1],
    [10, 10],
    [4, 9],              # unequal widths
    [13, 2, 5],
    [3, 0, 3],           # zero-width dimension mixed in
    [2] * 8,             # many narrow dimensions
]


class TestZcurveEquivalence:
    @pytest.mark.parametrize("bits_per_dim", SHAPES, ids=str)
    def test_round_trip_matches_reference_exhaustively_or_sampled(self, bits_per_dim):
        total = sum(bits_per_dim)
        rng = random.Random(total * 1001)
        if total <= 12:
            zs = range(1 << total)
        else:
            zs = [rng.getrandbits(total) for _ in range(500)]
        for z in zs:
            coords = zcurve.deinterleave(z, bits_per_dim)
            assert coords == zcurve._reference_deinterleave(z, bits_per_dim)
            assert zcurve.interleave(coords, bits_per_dim) == z
            assert zcurve._reference_interleave(coords, bits_per_dim) == z

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_random_shapes_match_reference(self, data):
        ndim = data.draw(st.integers(1, 4))
        bits_per_dim = data.draw(
            st.lists(st.integers(0, 14), min_size=ndim, max_size=ndim).filter(
                lambda widths: sum(widths) > 0
            )
        )
        coords = [data.draw(st.integers(0, (1 << w) - 1)) for w in bits_per_dim]
        z = zcurve.interleave(coords, bits_per_dim)
        assert z == zcurve._reference_interleave(coords, bits_per_dim)
        assert zcurve.deinterleave(z, bits_per_dim) == coords

    @pytest.mark.parametrize(
        "call",
        [
            lambda f: f([1, 2], [3]),            # arity mismatch
            lambda f: f([8], [3]),               # coordinate too wide
            lambda f: f([-1], [3]),              # negative coordinate
        ],
    )
    def test_error_messages_match_reference(self, call):
        with pytest.raises(CodecError) as optimized:
            call(zcurve.interleave)
        with pytest.raises(CodecError) as reference:
            call(zcurve._reference_interleave)
        assert str(optimized.value) == str(reference.value)

    def test_deinterleave_error_matches_reference(self):
        for bad in (-1, 1 << 6):
            with pytest.raises(CodecError) as optimized:
                zcurve.deinterleave(bad, [3, 3])
            with pytest.raises(CodecError) as reference:
                zcurve._reference_deinterleave(bad, [3, 3])
            assert str(optimized.value) == str(reference.value)


# ---------------------------------------------------------------------------
# BitWriter / BitReader
# ---------------------------------------------------------------------------


class TestBitWriterEquivalence:
    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_random_op_sequences_build_identical_bits(self, data):
        chunked, reference = BitWriter(), _ReferenceBitWriter()
        for _ in range(data.draw(st.integers(0, 60))):
            if data.draw(st.booleans()):
                bit = data.draw(st.integers(0, 1))
                chunked.write_bit(bit)
                reference.write_bit(bit)
            else:
                width = data.draw(st.integers(0, 12))
                value = data.draw(st.integers(0, max(0, (1 << width) - 1)))
                chunked.write_uint(value, width)
                reference.write_uint(value, width)
        assert chunked.getvalue() == reference.getvalue()

    def test_getvalue_is_resumable_like_reference(self):
        chunked, reference = BitWriter(), _ReferenceBitWriter()
        for writer in (chunked, reference):
            writer.write_uint(5, 4)
            writer.getvalue()
            writer.write_uint(2, 3)
        assert chunked.getvalue() == reference.getvalue()

    def test_zero_length_value(self):
        assert BitWriter().getvalue() == _ReferenceBitWriter().getvalue() == Bits()

    @pytest.mark.parametrize("widths", [[0, 0, 5], [1] * 20, [64, 1]])
    def test_degenerate_widths(self, widths):
        chunked, reference = BitWriter(), _ReferenceBitWriter()
        for width in widths:
            value = (1 << width) - 1 if width else 0
            chunked.write_uint(value, width)
            reference.write_uint(value, width)
        assert chunked.getvalue() == reference.getvalue()

    @given(st.lists(st.integers(0, 16), max_size=12), st.data())
    @settings(max_examples=60, deadline=None)
    def test_reader_matches_reference_reader(self, widths, data):
        writer = BitWriter()
        values = []
        for width in widths:
            value = data.draw(st.integers(0, max(0, (1 << width) - 1)))
            writer.write_uint(value, width)
            values.append(value)
        bits = writer.getvalue()
        fast, slow = BitReader(bits), _ReferenceBitReader(bits)
        for width, expected in zip(widths, values):
            assert fast.read_uint(width) == slow.read_uint(width) == expected
        assert fast.remaining == slow.remaining == 0
        # Reading past the end reports the identical underrun message.
        with pytest.raises(CodecError) as a:
            fast.read_uint(1)
        with pytest.raises(CodecError) as b:
            slow.read_uint(1)
        assert str(a.value) == str(b.value)


# ---------------------------------------------------------------------------
# Quadtree encode / size / decode
# ---------------------------------------------------------------------------


def _random_points(rng, codec, count):
    max_flags = (1 << codec.flag_bits) - 1 if codec.flag_bits else 0
    return {
        (
            rng.randint(1, max_flags) if codec.flag_bits else 0,
            rng.getrandbits(codec.z_bits),
        )
        for _ in range(count)
    }


CODEC_SHAPES = [
    (2, [10, 10]),   # the paper's two-alias standard shape
    (2, [4, 9]),     # unequal dims
    (0, [5, 5]),     # no flag level
    (1, [6]),        # single dimension
    (3, [2, 2, 2]),  # three aliases, three dims
    (2, [1, 1]),     # maximum-depth tree: every level one bit wide
    (0, [8]),        # single dim, no flags: 8 levels of width 1
]


class TestQuadtreeEquivalence:
    @pytest.mark.parametrize("flag_bits,bpd", CODEC_SHAPES, ids=str)
    @pytest.mark.parametrize("count", [0, 1, 2, 7, 40, 200])
    def test_encode_size_decode_match_reference(self, flag_bits, bpd, count):
        codec = QuadtreeCodec(flag_bits, zcurve.level_widths(bpd))
        rng = random.Random(count * 31 + sum(bpd))
        points = _random_points(rng, codec, count)
        encoded = codec.encode(points)
        assert encoded == codec._reference_encode(points)
        assert (
            codec.encoded_size_bits(points)
            == codec._reference_encoded_size_bits(points)
            == len(encoded)
        )
        assert codec.decode(encoded) == codec._reference_decode(encoded) == frozenset(points)

    def test_zero_length_bits_decode_to_empty_set(self):
        codec = QuadtreeCodec(2, zcurve.level_widths([10, 10]))
        assert codec.encode([]) == Bits()
        assert codec.decode(Bits()) == codec._reference_decode(Bits()) == frozenset()

    def test_full_domain_max_depth_tree(self):
        # Every point of a tiny domain present: decomposition reaches the
        # maximum level everywhere subdivision pays off.
        codec = QuadtreeCodec(0, zcurve.level_widths([2, 2]))
        points = {(0, z) for z in range(1 << 4)}
        encoded = codec.encode(points)
        assert encoded == codec._reference_encode(points)
        assert codec.decode(encoded) == frozenset(points)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_codecs_match_reference(self, data):
        flag_bits = data.draw(st.integers(0, 3))
        ndim = data.draw(st.integers(1, 3))
        bpd = data.draw(st.lists(st.integers(1, 6), min_size=ndim, max_size=ndim))
        codec = QuadtreeCodec(flag_bits, zcurve.level_widths(bpd))
        seed = data.draw(st.integers(0, 2**16))
        rng = random.Random(seed)
        points = _random_points(rng, codec, data.draw(st.integers(0, 60)))
        encoded = codec.encode(points)
        assert encoded == codec._reference_encode(points)
        assert codec.encoded_size_bits(points) == len(encoded)
        assert codec.decode(encoded) == frozenset(points)

    @pytest.mark.parametrize("mutation", ["truncate", "extend", "bitflip"])
    def test_corrupt_streams_fail_identically(self, mutation):
        codec = QuadtreeCodec(2, zcurve.level_widths([5, 5]))
        rng = random.Random(77)
        points = _random_points(rng, codec, 25)
        encoded = codec.encode(points)
        for trial in range(40):
            if mutation == "truncate":
                cut = rng.randint(0, max(0, len(encoded) - 1))
                corrupt = Bits(encoded.value >> (len(encoded) - cut), cut)
            elif mutation == "extend":
                extra = rng.randint(1, 8)
                corrupt = Bits(
                    (encoded.value << extra) | rng.getrandbits(extra),
                    len(encoded) + extra,
                )
            else:
                position = rng.randint(0, len(encoded) - 1)
                corrupt = Bits(encoded.value ^ (1 << position), len(encoded))
            try:
                fast = ("ok", codec.decode(corrupt))
            except CodecError as error:
                fast = ("error", str(error))
            try:
                slow = ("ok", codec._reference_decode(corrupt))
            except CodecError as error:
                slow = ("error", str(error))
            assert fast == slow
