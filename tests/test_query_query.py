"""JoinQuery model tests: predicate split, attribute sets, validation."""

import pytest

from repro.data.sensors import standard_catalog
from repro.errors import BindingError, QueryError
from repro.query.expressions import Column, Compare, Literal
from repro.query.parser import parse_query
from repro.query.query import JoinQuery, Once, SamplePeriod, SelectItem


def test_selection_vs_join_predicate_split():
    query = parse_query(
        "SELECT A.temp FROM s A, s B "
        "WHERE A.temp > 20 AND B.hum < 50 AND A.temp - B.temp > 1 ONCE"
    )
    assert len(query.selection_predicates("A")) == 1
    assert len(query.selection_predicates("B")) == 1
    assert len(query.join_predicates) == 1
    assert len(query.conjuncts) == 3


def test_join_attributes_exclude_selection_only_attrs():
    query = parse_query(
        "SELECT A.light FROM s A, s B WHERE A.hum > 30 AND A.temp - B.temp > 1 ONCE"
    )
    assert query.join_attributes("A") == ["temp"]
    # hum appears only in a selection predicate: local, never shipped.
    assert query.full_tuple_attributes("A") == ["light", "temp"]


def test_full_tuple_union_select_and_join():
    query = parse_query(
        "SELECT A.hum, B.pres FROM s A, s B WHERE A.temp - B.temp > 1 ONCE"
    )
    assert query.full_tuple_attributes("A") == ["hum", "temp"]
    assert query.full_tuple_attributes("B") == ["pres", "temp"]


def test_empty_select_rejected():
    with pytest.raises(QueryError):
        JoinQuery([], [("s", "A")], None)


def test_duplicate_alias_rejected():
    item = SelectItem(Column("A", "temp"))
    with pytest.raises(QueryError, match="duplicate"):
        JoinQuery([item], [("s", "A"), ("t", "A")], None)


def test_mixed_aggregates_rejected():
    from repro.query.expressions import Aggregate

    items = [
        SelectItem(Column("A", "temp")),
        SelectItem(Aggregate("MIN", Column("A", "temp"))),
    ]
    with pytest.raises(QueryError, match="GROUP BY"):
        JoinQuery(items, [("s", "A")], None)


def test_unknown_alias_in_select_rejected():
    item = SelectItem(Column("Z", "temp"))
    with pytest.raises(BindingError):
        JoinQuery([item], [("s", "A")], None)


def test_require_join_conditions():
    single = parse_query("SELECT temp FROM sensors ONCE")
    with pytest.raises(QueryError, match="at least two"):
        single.require_join()
    cross = JoinQuery(
        [SelectItem(Column("A", "temp"))],
        [("s", "A"), ("s", "B")],
        Compare(">", Column("A", "temp"), Literal(1.0)),
    )
    with pytest.raises(QueryError, match="cross"):
        cross.require_join()


def test_relation_of():
    query = parse_query("SELECT A.temp FROM left A, right B WHERE A.temp > B.temp ONCE")
    assert query.relation_of("A") == "left"
    assert query.relation_of("B") == "right"
    assert not query.is_self_join
    with pytest.raises(BindingError):
        query.relation_of("C")


def test_validate_attributes_against_catalog():
    query = parse_query("SELECT A.temp FROM s A, s B WHERE A.temp > B.temp ONCE")
    query.validate_attributes(standard_catalog())  # fine
    bad = parse_query("SELECT A.windspeed FROM s A, s B WHERE A.temp > B.temp ONCE")
    with pytest.raises(BindingError):
        bad.validate_attributes(standard_catalog())


def test_mode_rendering():
    assert Once().sql() == "ONCE"
    assert SamplePeriod(2.5).sql() == "SAMPLE PERIOD 2.5"
    with pytest.raises(QueryError):
        SamplePeriod(0)


def test_three_way_join_attributes():
    query = parse_query(
        "SELECT A.temp FROM s A, s B, s C "
        "WHERE A.temp - B.temp > 1 AND B.hum - C.hum > 2 ONCE"
    )
    assert query.aliases == ["A", "B", "C"]
    assert query.join_attributes("B") == ["hum", "temp"]
    assert query.join_attributes("C") == ["hum"]


def test_sql_rendering_includes_all_clauses():
    query = parse_query(
        "SELECT A.temp FROM s A, s B WHERE A.temp > B.temp SAMPLE PERIOD 10"
    )
    sql = query.sql()
    assert "SELECT" in sql and "FROM s A, s B" in sql
    assert "WHERE" in sql and "SAMPLE PERIOD 10" in sql
