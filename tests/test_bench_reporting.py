"""Reporting-layer tests: table rendering, CSV round-trips, row validation,
and the parallel-equals-serial contract of the bench harness."""

import csv
import math

import pytest

from repro.bench.experiments import fig12_ratio3, variance_study
from repro.bench.harness import run_experiments
from repro.bench.reporting import ExperimentSeries, render_table, save_csv

NODES = 60


def make_series():
    series = ExperimentSeries(
        experiment="demo",
        title="A demo",
        columns=["name", "count", "ratio"],
    )
    series.add_row("tiny", 3, 0.5)
    series.add_row("much-longer-name", 12345, 2.0)
    series.notes.append("a note")
    return series


class TestRenderTable:
    def test_exact_layout(self):
        text = render_table(make_series())
        assert text.splitlines() == [
            "== demo: A demo ==",
            "            name  count  ratio",
            "----------------  -----  -----",
            "            tiny      3  0.500",
            "much-longer-name  12345      2",
            "   note: a note",
        ]

    def test_column_widths_cover_header_and_cells(self):
        text = render_table(make_series())
        header, rule = text.splitlines()[1:3]
        # The rule mirrors the final column widths: 16, 5, 5.
        assert [len(part) for part in rule.split("  ")] == [16, 5, 5]
        assert len(header) == len(rule)

    def test_float_formatting(self):
        series = ExperimentSeries("f", "floats", ["value"])
        for value in (1.0, 0.12345, 1e15, 22.5):
            series.add_row(value)
        rendered = [line.strip() for line in render_table(series).splitlines()[3:]]
        # Integral floats collapse to ints; others get three decimals; at
        # 1e15 and beyond the int collapse is disabled to avoid precision
        # artefacts, so the value keeps its decimals.
        assert rendered == ["1", "0.123", "1000000000000000.000", "22.500"]


class TestSaveCsv:
    def test_round_trip(self, tmp_path):
        series = make_series()
        path = save_csv(series, tmp_path)
        assert path == tmp_path / "demo.csv"
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == series.columns
        assert rows[1:] == [[str(v) for v in row] for row in series.rows]

    def test_creates_missing_parent_directories(self, tmp_path):
        nested = tmp_path / "fresh" / "checkout" / "results"
        assert not nested.exists()
        path = save_csv(make_series(), nested)
        assert path.exists()


class TestAddRowValidation:
    def test_arity_error(self):
        series = ExperimentSeries("x", "t", ["a", "b"])
        with pytest.raises(ValueError, match="2 columns"):
            series.add_row(1)
        with pytest.raises(ValueError, match="2 columns"):
            series.add_row(1, 2, 3)
        assert series.rows == []

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf"), math.inf]
    )
    def test_non_finite_rejected(self, bad):
        series = ExperimentSeries("x", "t", ["a", "b"])
        with pytest.raises(ValueError, match="non-finite"):
            series.add_row(1, bad)
        assert series.rows == []

    def test_string_inf_is_fine(self):
        series = ExperimentSeries("x", "t", ["a"])
        series.add_row("inf")
        assert series.rows == [["inf"]]


class TestSeriesDictRoundTrip:
    def test_lossless(self):
        series = make_series()
        rebuilt = ExperimentSeries.from_dict(series.to_dict())
        assert rebuilt == series
        assert render_table(rebuilt) == render_table(series)


def test_parallel_matches_serial():
    """Harness cells on 2 workers reproduce direct serial calls exactly."""
    serial = [fig12_ratio3(node_count=NODES), variance_study(node_count=NODES)]
    run = run_experiments(
        ["fig12", "variance"], node_count=NODES, jobs=2, cache_dir=None
    )
    assert [s.experiment for s in run.series] == ["fig12", "variance"]
    for parallel_series, serial_series in zip(run.series, serial):
        assert parallel_series == serial_series
        assert render_table(parallel_series) == render_table(serial_series)


def test_jobs_one_matches_jobs_two(tmp_path):
    one = run_experiments(["fig12"], node_count=NODES, jobs=1, cache_dir=None)
    two = run_experiments(["fig12"], node_count=NODES, jobs=2, cache_dir=None)
    assert one.series == two.series
    csv_one = save_csv(one.series[0], tmp_path / "one").read_bytes()
    csv_two = save_csv(two.series[0], tmp_path / "two").read_bytes()
    assert csv_one == csv_two
