"""Compression-baseline tests (§VI-B)."""

import pytest

from repro.codec.compression import (
    COMPRESSORS,
    compressed_size,
    encode_raw_tuples,
    raw_size_bytes,
)


def tuples(count):
    return [
        {"temp": 20.0 + 0.1 * (i % 30), "x": float(i % 100), "y": float(i // 100)}
        for i in range(count)
    ]


def test_raw_layout_two_bytes_per_attribute():
    raw = encode_raw_tuples(tuples(10), ["temp", "x", "y"])
    assert len(raw) == 10 * 3 * 2
    assert raw_size_bytes(10, 3) == len(raw)


def test_raw_encoding_deterministic():
    assert encode_raw_tuples(tuples(5), ["temp", "x"]) == encode_raw_tuples(
        tuples(5), ["temp", "x"]
    )


def test_attribute_order_matters():
    a = encode_raw_tuples(tuples(5), ["temp", "x"])
    b = encode_raw_tuples(tuples(5), ["x", "temp"])
    assert a != b


def test_all_compressors_available():
    assert set(COMPRESSORS) == {"none", "zlib", "bzip2"}


def test_none_is_identity():
    raw = encode_raw_tuples(tuples(20), ["temp"])
    assert compressed_size(raw, "none") == len(raw)


def test_bzip2_inflates_small_payloads():
    """The paper's observation: bzip2 *adds* overhead at per-hop sizes."""
    raw = encode_raw_tuples(tuples(5), ["temp", "x", "y"])  # 30 bytes
    assert compressed_size(raw, "bzip2") > len(raw)


def test_zlib_beats_raw_on_large_redundant_payloads():
    raw = encode_raw_tuples(tuples(1500), ["temp", "x", "y"])
    assert compressed_size(raw, "zlib") < len(raw)


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError, match="unknown compressor"):
        compressed_size(b"abc", "lzma")
