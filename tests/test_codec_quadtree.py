"""Pointerless quadtree codec tests (Fig. 9 wire format)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.bits import Bits
from repro.codec.quadtree import QuadtreeCodec
from repro.errors import CodecError


@pytest.fixture()
def codec():
    # 2 relation-flag bits, 3 x 2-bit Z levels (6-bit Z space).
    return QuadtreeCodec(2, [2, 2, 2])


def points_strategy(codec):
    flags = st.integers(min_value=1, max_value=(1 << codec.flag_bits) - 1)
    zs = st.integers(min_value=0, max_value=(1 << codec.z_bits) - 1)
    return st.frozensets(st.tuples(flags, zs), max_size=40)


class TestRoundtrip:
    def test_empty_set(self, codec):
        assert codec.encode([]) == Bits()
        assert codec.decode(Bits()) == frozenset()

    def test_single_point(self, codec):
        points = {(0b10, 0b110011)}
        assert codec.decode(codec.encode(points)) == frozenset(points)

    def test_duplicate_points_collapse(self, codec):
        encoded = codec.encode([(3, 5), (3, 5), (3, 5)])
        assert codec.decode(encoded) == frozenset({(3, 5)})

    @settings(deadline=None)
    @given(st.data())
    def test_roundtrip_random(self, data):
        codec = QuadtreeCodec(2, [2, 2, 2])
        points = data.draw(points_strategy(codec))
        assert codec.decode(codec.encode(points)) == points

    @settings(deadline=None)
    @given(st.data())
    def test_encoding_is_canonical(self, data):
        """Same set, any insertion order -> identical bitstring."""
        codec = QuadtreeCodec(2, [3, 3])
        points = list(data.draw(points_strategy(codec)))
        forward = codec.encode(points)
        backward = codec.encode(list(reversed(points)))
        assert forward == backward

    # Codec shapes for the seeded sweep: uneven level widths, no flag bits,
    # single level, many narrow levels.  Replaces earlier hard-coded point
    # lists with generator-driven coverage of the same shapes.
    SWEEP_SHAPES = [
        (2, [3, 2, 1]),
        (0, [2, 2]),
        (0, [1, 1, 1]),
        (1, [4]),
        (2, [2] * 6),
        (3, [1] * 8),
    ]

    @pytest.mark.parametrize("flag_bits,widths", SWEEP_SHAPES)
    @pytest.mark.parametrize("seed", range(5))
    def test_seeded_sweep_roundtrip(self, flag_bits, widths, seed):
        import random

        from repro.verify.generators import random_flagged_points

        codec = QuadtreeCodec(flag_bits, widths)
        rng = random.Random(seed)
        points = random_flagged_points(rng, codec, max_points=40)
        assert codec.decode(codec.encode(points)) == frozenset(points)
        assert codec.encoded_size_bits(points) == len(codec.encode(points))


class TestCompactness:
    def test_single_point_costs_two_bits_plus_payload(self, codec):
        # '1' + full point + '0' terminator.
        encoded = codec.encode({(1, 0)})
        assert len(encoded) == 1 + codec.total_bits + 1

    def test_encoded_size_matches_encode(self, codec):
        points = {(3, 0b000000), (3, 0b000001), (3, 0b000010), (1, 0b111111)}
        assert codec.encoded_size_bits(points) == len(codec.encode(points))

    def test_clustered_points_beat_raw_listing(self):
        """Spatially clustered Z-numbers share prefixes -> big savings."""
        codec = QuadtreeCodec(2, [2] * 8)  # 16-bit Z space
        cluster = {(3, 0b1010101010100000 | i) for i in range(16)}
        encoded_bits = len(codec.encode(cluster))
        raw_bits = len(cluster) * (codec.total_bits + 1) + 1
        assert encoded_bits < raw_bits * 0.6

    def test_scattered_points_never_worse_than_listing(self):
        codec = QuadtreeCodec(2, [2] * 8)
        scattered = {(3, (i * 2654435761) % (1 << 16)) for i in range(30)}
        encoded_bits = len(codec.encode(scattered))
        raw_bits = len(scattered) * (codec.total_bits + 1) + 1
        assert encoded_bits <= raw_bits

    def test_subdivision_reduces_per_point_cost(self):
        """Deep shared prefixes make the relative encoding shorter."""
        codec = QuadtreeCodec(2, [2] * 10)  # 20-bit Z space
        base = 0b10110011001100110000
        dense = {(3, base | i) for i in range(16)}
        sparse_cost = 16 * (1 + codec.total_bits) + 1
        assert len(codec.encode(dense)) < sparse_cost / 2


class TestValidation:
    def test_flags_must_name_a_relation(self, codec):
        with pytest.raises(CodecError):
            codec.encode([(0, 5)])

    def test_flags_overflow(self, codec):
        with pytest.raises(CodecError):
            codec.encode([(4, 5)])

    def test_z_overflow(self, codec):
        with pytest.raises(CodecError):
            codec.encode([(1, 1 << codec.z_bits)])

    def test_trailing_garbage_detected(self, codec):
        encoded = codec.encode({(1, 0)})
        padded = Bits(encoded.value << 3, len(encoded) + 3)
        with pytest.raises(CodecError, match="trailing"):
            codec.decode(padded)

    def test_bad_level_widths(self):
        with pytest.raises(CodecError):
            QuadtreeCodec(2, [2, 0])
        with pytest.raises(CodecError):
            QuadtreeCodec(-1, [2])
        with pytest.raises(CodecError):
            QuadtreeCodec(0, [])

    def test_pack_unpack(self, codec):
        packed = codec.pack((2, 0b101))
        assert codec.unpack(packed) == (2, 0b101)


class TestOptimality:
    """The decomposition-threshold DP must find the minimal encoding."""

    @staticmethod
    def _brute_minimum(codec, packed, level, remaining):
        """Independent exhaustive minimiser over subdivide/list decisions.

        Deliberately written differently from the production DP (explicit
        recursion over sorted groups, list cost computed from first
        principles) so a shared bug cannot hide.
        """
        cost_as_list = len(packed) * (1 + remaining) + 1
        if level >= len(codec._schedule):
            return cost_as_list
        width = codec._schedule[level]
        groups = {}
        for point in packed:
            key = (point >> (remaining - width)) & ((1 << width) - 1)
            groups.setdefault(key, []).append(point)
        cost_subdivided = 1 + (1 << width)
        for group in groups.values():
            cost_subdivided += TestOptimality._brute_minimum(
                codec, group, level + 1, remaining - width
            )
        return min(cost_as_list, cost_subdivided)

    @settings(deadline=None, max_examples=60)
    @given(st.data())
    def test_encoding_size_is_minimal(self, data):
        codec = QuadtreeCodec(2, [2, 2, 2])
        points = data.draw(points_strategy(codec))
        if not points:
            return
        packed = sorted(codec.pack(p) for p in points)
        optimal = self._brute_minimum(codec, packed, 0, codec.total_bits)
        assert len(codec.encode(points)) == optimal

    def test_paper_fig8_style_example(self):
        """Fig. 8's scenario: five clustered 2-D points; the tree isolates
        their common region and lists the remainders relative to it."""
        codec = QuadtreeCodec(0, [2, 2, 2, 2])  # 8-bit Z space, 2 dims
        # Five points sharing the same top quadrant.
        base = 0b01_00_00_00
        points = {(0, base | offset) for offset in (0b000000, 0b000001, 0b000100,
                                                    0b010000, 0b010101)}
        encoded = codec.encode(points)
        flat_cost = 5 * (1 + 8) + 1
        assert len(encoded) < flat_cost
        assert codec.decode(encoded) == frozenset(points)


class TestFullPipeline:
    """Raw values -> quantize -> Z-curve -> quadtree wire format -> decode.

    The whole encoding stack the protocol runs per tuple, driven by the
    differential harness's seeded generators: the decoded cell must contain
    the raw value on every dimension, and the wire round trip must be exact.
    """

    @pytest.mark.parametrize("attrs", [["temp"], ["temp", "hum"], ["temp", "hum", "x"]])
    @pytest.mark.parametrize("seed", range(4))
    def test_quantize_zcurve_quadtree_roundtrip(self, attrs, seed):
        import random

        from repro.codec.quantize import Quantizer
        from repro.data.sensors import standard_catalog
        from repro.verify.generators import random_values

        quantizer = Quantizer.for_attributes(standard_catalog(), attrs)
        codec = QuadtreeCodec.for_quantizer(quantizer, alias_count=2)
        rng = random.Random(seed)
        points = set()
        for _ in range(30):
            values = random_values(rng, quantizer)
            z = quantizer.encode(values)
            bounds = quantizer.cell_bounds(z)
            for name, value in values.items():
                assert bounds.lo[name] <= value <= bounds.hi[name]
            cells = quantizer.decode_cells(z)
            for dim in quantizer.dimensions:
                assert cells[dim.name] == dim.cell_of(values[dim.name])
            points.add((rng.randrange(1, 4), z))
        assert codec.decode(codec.encode(points)) == frozenset(points)
