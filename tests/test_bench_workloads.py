"""Workload/scenario builder tests."""

import pytest

from repro.bench.workloads import (
    JOIN_ATTR_SETS,
    Scenario,
    build_scenario,
    calibrated_query,
    default_node_count,
    ratio_query_builder,
)


def test_default_node_count_env(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert default_node_count() == 600
    monkeypatch.setenv("REPRO_SCALE", "paper")
    assert default_node_count() == 1500


def test_scenario_caching():
    a = build_scenario(node_count=150, seed=1)
    b = build_scenario(node_count=150, seed=1)
    c = build_scenario(node_count=150, seed=2)
    assert a is b
    assert a is not c


def test_scenario_density_matches_paper():
    scenario = build_scenario(node_count=150, seed=1)
    density = scenario.node_count / scenario.config.area_side_m**2
    assert density == pytest.approx(1500 / 1050.0**2, rel=1e-6)


@pytest.mark.parametrize("join_attrs,total", [(1, 1), (1, 3), (1, 5), (3, 3), (3, 5)])
def test_ratio_builder_attribute_counts(join_attrs, total):
    query = ratio_query_builder(join_attrs, total)(5.0)
    assert len(query.join_attributes("A")) == join_attrs
    assert len(query.full_tuple_attributes("A")) == total
    assert query.join_attribute_ratio("A") == pytest.approx(join_attrs / total)


def test_ratio_builder_validation():
    with pytest.raises(ValueError):
        ratio_query_builder(4, 5)
    with pytest.raises(ValueError):
        ratio_query_builder(3, 2)
    with pytest.raises(ValueError):
        ratio_query_builder(1, 99)


def test_threshold_controls_selectivity():
    builder = ratio_query_builder(1, 3)
    scenario = build_scenario(node_count=150, seed=1)
    from repro.bench.calibrate import measure_result_fraction

    scenario.world.take_snapshot(0.0)
    loose = measure_result_fraction(scenario.world, builder(0.5))
    tight = measure_result_fraction(scenario.world, builder(3.0))
    assert loose >= tight


def test_calibrated_query_achieves_fraction():
    scenario = build_scenario(node_count=150, seed=1)
    query = calibrated_query(scenario, 1, 3, target_fraction=0.10)
    from repro.bench.calibrate import measure_result_fraction

    achieved = measure_result_fraction(scenario.world, query)
    assert abs(achieved - 0.10) < 0.05


def test_scenario_run_helper(tail_query):
    scenario = build_scenario(node_count=150, seed=1)
    outcome = scenario.run(tail_query(1.0), "external-join")
    assert outcome.total_transmissions > 0


def test_two_join_attribute_template_runs_exactly():
    """The 2-join-attribute template (temp+hum) through both joins."""
    from repro.bench.workloads import ratio_query_builder
    from repro.joins.external import ExternalJoin
    from repro.joins.sensjoin import SensJoin

    scenario = build_scenario(node_count=150, seed=1)
    query = ratio_query_builder(2, 4)(8.0)
    assert query.join_attributes("A") == ["hum", "temp"]
    external = scenario.run(query, ExternalJoin())
    sens = scenario.run(query, SensJoin())
    assert external.result.signature() == sens.result.signature()


def test_min_distance_constant_used_by_three_attr_template():
    from repro.bench.workloads import MIN_DISTANCE_M, ratio_query_builder

    query = ratio_query_builder(3, 5)(5.0)
    # Integral literals render without a decimal point.
    assert f"distance(A.x, A.y, B.x, B.y) > {MIN_DISTANCE_M:g}" in query.sql().replace("\n", " ")
