"""End-to-end tests of the lossy link layer (§IV-F).

Three properties are pinned down here:

1. **Strict no-op at loss 0** — a lossless deployment behaves exactly as
   before the loss layer existed: no random draws, no retransmission
   counters, no extra outcome keys, the classic random tie-break tree.
2. **Exactness under loss** — the ARQ delivers persistently, so every join
   method returns the same result at every loss rate.
3. **Monotonicity** — with the seeded single-draw-per-packet sampling, the
   per-phase retransmission counts grow monotonically with the loss rate.
"""

import pytest

from repro.api import SensorNetworkDB
from repro.bench.workloads import build_scenario, calibrated_query
from repro.joins.external import ExternalJoin
from repro.joins.mediated import MediatedJoin
from repro.joins.semijoin import SemiJoinBroadcast
from repro.joins.sensjoin import SensJoin
from repro.routing.ctp import build_tree

NODES = 120
SEED = 3
LOSS_RATES = (0.05, 0.1, 0.2, 0.3)


@pytest.fixture(scope="module")
def loss_outcomes():
    """SENS-Join + external-join outcomes per loss rate (0 included)."""
    outcomes = {}
    for loss_rate in (0.0,) + LOSS_RATES:
        scenario = build_scenario(NODES, SEED, loss_rate=loss_rate)
        query = calibrated_query(scenario, 1, 3, 0.05)
        outcomes[loss_rate] = {
            "sens": scenario.run(query, SensJoin()),
            "external": scenario.run(query, ExternalJoin()),
        }
    return outcomes


# -- strict no-op at loss 0 ----------------------------------------------------


def test_lossless_outcome_has_no_loss_artifacts(loss_outcomes):
    outcome = loss_outcomes[0.0]["sens"]
    assert outcome.total_retransmissions == 0
    assert outcome.per_phase_retransmissions() == {}
    assert "retransmissions" not in outcome.details


def test_lossless_channel_rng_never_advances():
    scenario = build_scenario(NODES, SEED, loss_rate=0.0)
    channel = scenario.network.channel
    state_before = channel._rng.getstate()
    query = calibrated_query(scenario, 1, 3, 0.05)
    scenario.run(query, SensJoin())
    assert channel._rng.getstate() == state_before


def test_lossless_tree_uses_classic_random_tie_break():
    scenario = build_scenario(NODES, SEED, loss_rate=0.0)
    classic = build_tree(scenario.network, tie_break="random", seed=SEED)
    assert scenario.tree.as_parent_map() == classic.as_parent_map()


def test_lossless_run_is_deterministic(loss_outcomes):
    scenario = build_scenario(NODES, SEED, loss_rate=0.0)
    query = calibrated_query(scenario, 1, 3, 0.05)
    again = scenario.run(query, SensJoin())
    reference = loss_outcomes[0.0]["sens"]
    assert again.total_transmissions == reference.total_transmissions
    assert again.result.match_count == reference.result.match_count
    assert again.response_time_s == reference.response_time_s


# -- exactness under loss ------------------------------------------------------


def test_results_exact_at_every_loss_rate(loss_outcomes):
    reference = loss_outcomes[0.0]["sens"].result.match_count
    for loss_rate in LOSS_RATES:
        sens = loss_outcomes[loss_rate]["sens"]
        external = loss_outcomes[loss_rate]["external"]
        assert sens.result.match_count == reference
        assert external.result.match_count == reference


def test_all_four_methods_agree_under_loss():
    scenario = build_scenario(NODES, SEED, loss_rate=0.2)
    query = calibrated_query(scenario, 1, 3, 0.05)
    matches = {
        algorithm.name: scenario.run(query, algorithm).result.match_count
        for algorithm in (ExternalJoin(), SensJoin(), SemiJoinBroadcast(), MediatedJoin())
    }
    assert len(set(matches.values())) == 1, matches


# -- retransmission accounting under loss --------------------------------------


def test_lossy_runs_report_retransmissions(loss_outcomes):
    for loss_rate in LOSS_RATES:
        outcome = loss_outcomes[loss_rate]["sens"]
        assert outcome.total_retransmissions > 0
        assert outcome.details["retransmissions"] == float(outcome.total_retransmissions)


def test_first_transmissions_invariant_across_positive_loss(loss_outcomes):
    counts = {
        loss_rate: loss_outcomes[loss_rate]["sens"].total_transmissions
        for loss_rate in LOSS_RATES
    }
    assert len(set(counts.values())) == 1, counts


def test_per_phase_retx_monotone_in_loss_rate(loss_outcomes):
    previous = {}
    for loss_rate in LOSS_RATES:
        by_phase = loss_outcomes[loss_rate]["sens"].per_phase_retransmissions()
        for phase, count in previous.items():
            assert by_phase.get(phase, 0) >= count, (
                f"phase {phase} shrank from {count} at the previous rate to "
                f"{by_phase.get(phase, 0)} at {loss_rate}"
            )
        previous = by_phase


def test_total_retx_monotone_for_external_join(loss_outcomes):
    totals = [
        loss_outcomes[loss_rate]["external"].total_retransmissions
        for loss_rate in LOSS_RATES
    ]
    assert totals == sorted(totals)
    assert totals[0] > 0


def test_retx_energy_charged(loss_outcomes):
    scenario = build_scenario(NODES, SEED, loss_rate=0.3)
    query = calibrated_query(scenario, 1, 3, 0.05)
    scenario.run(query, SensJoin())
    ledgers = [scenario.network.nodes[n].ledger for n in scenario.network.node_ids]
    assert sum(ledger.retx_packets for ledger in ledgers) > 0
    assert sum(ledger.retx_energy for ledger in ledgers) > 0
    assert all(
        ledger.total_energy
        >= ledger.tx_energy + ledger.rx_energy
        for ledger in ledgers
    )


# -- api front door ------------------------------------------------------------


def test_api_loss_knob():
    db = SensorNetworkDB(node_count=80, seed=5, loss_rate=0.25)
    assert db.network.link_quality is not None
    report = db.execute(
        "SELECT A.hum, B.hum FROM sensors A, sensors B "
        "WHERE A.temp - B.temp > 18.0 ONCE"
    )
    assert report.retransmissions > 0
    assert "retransmissions" in report.summary()


def test_api_lossless_summary_unchanged():
    db = SensorNetworkDB(node_count=80, seed=5)
    report = db.execute(
        "SELECT A.hum, B.hum FROM sensors A, sensors B "
        "WHERE A.temp - B.temp > 18.0 ONCE"
    )
    assert report.retransmissions == 0
    assert "retransmissions" not in report.summary()


# -- loss-sweep smoke (mirrors the CI workflow's fast check) -------------------


def test_loss_sweep_smoke():
    from repro.bench.experiments import loss_study

    series = loss_study(loss_rates=(0.0, 0.2), node_count=100, seed=1)
    rows = {(row[0], row[1]): row for row in series.rows}
    seen = {row[1] for row in series.rows}
    assert seen == {"external-join", "sens-join", "semijoin-broadcast", "mediated-join"}
    for (loss_rate, _algorithm), row in rows.items():
        retx = row[3]
        assert (retx == 0) == (loss_rate == 0.0)
    matches = {row[5] for row in series.rows}
    assert len(matches) == 1  # every method, every rate: the exact result
