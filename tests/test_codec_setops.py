"""Set-operation tests for the quadtree representation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.quadtree import QuadtreeCodec
from repro.codec.setops import (
    insert_point,
    intersect_encoded,
    intersect_points,
    union_encoded,
    union_points,
)

FLAG_A, FLAG_B, FLAG_BOTH = 0b10, 0b01, 0b11


def test_union_merges_flags():
    """'10' union '01' on the same Z-number gives '11' (both relations)."""
    merged = union_points([(FLAG_A, 5)], [(FLAG_B, 5)])
    assert merged == frozenset({(FLAG_BOTH, 5)})


def test_union_disjoint_points():
    merged = union_points([(FLAG_A, 1)], [(FLAG_B, 2)])
    assert merged == frozenset({(FLAG_A, 1), (FLAG_B, 2)})


def test_union_is_commutative_and_idempotent():
    a = [(FLAG_A, 1), (FLAG_BOTH, 2)]
    b = [(FLAG_B, 1)]
    assert union_points(a, b) == union_points(b, a)
    assert union_points(a, a) == frozenset(a)


def test_intersect_ands_flags():
    common = intersect_points([(FLAG_BOTH, 5)], [(FLAG_A, 5)])
    assert common == frozenset({(FLAG_A, 5)})


def test_intersect_drops_flagless_points():
    # A-only on one side, B-only on the other: flags AND to zero -> gone.
    assert intersect_points([(FLAG_A, 5)], [(FLAG_B, 5)]) == frozenset()


def test_intersect_requires_shared_z():
    assert intersect_points([(FLAG_BOTH, 1)], [(FLAG_BOTH, 2)]) == frozenset()


def test_insert_point():
    result = insert_point([(FLAG_A, 1)], (FLAG_B, 1))
    assert result == frozenset({(FLAG_BOTH, 1)})
    result = insert_point([], (FLAG_A, 9))
    assert result == frozenset({(FLAG_A, 9)})


@pytest.fixture()
def codec():
    return QuadtreeCodec(2, [2, 2, 2])


def sets(codec):
    flags = st.integers(min_value=1, max_value=3)
    zs = st.integers(min_value=0, max_value=(1 << codec.z_bits) - 1)
    return st.frozensets(st.tuples(flags, zs), max_size=25)


@settings(deadline=None)
@given(st.data())
def test_union_encoded_equals_point_union(data):
    codec = QuadtreeCodec(2, [2, 2, 2])
    a = data.draw(sets(codec))
    b = data.draw(sets(codec))
    combined = codec.decode(union_encoded(codec, codec.encode(a), codec.encode(b)))
    assert combined == union_points(a, b)


@settings(deadline=None)
@given(st.data())
def test_intersect_encoded_equals_point_intersection(data):
    codec = QuadtreeCodec(2, [2, 2, 2])
    a = data.draw(sets(codec))
    b = data.draw(sets(codec))
    combined = codec.decode(intersect_encoded(codec, codec.encode(a), codec.encode(b)))
    assert combined == intersect_points(a, b)


@settings(deadline=None)
@given(st.data())
def test_union_never_larger_than_operand_sum(data):
    """Merging subtree structures never inflates the wire size beyond the
    concatenation of the operands (the reason nodes merge before sending)."""
    codec = QuadtreeCodec(2, [2, 2, 2])
    a = data.draw(sets(codec))
    b = data.draw(sets(codec))
    merged_size = len(union_encoded(codec, codec.encode(a), codec.encode(b)))
    separate = len(codec.encode(a)) + len(codec.encode(b))
    if a or b:
        assert merged_size <= separate + 2  # +list terminator slack
