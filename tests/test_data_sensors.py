"""Sensor catalogue tests."""

import pytest

from repro.data.sensors import SensorCatalog, SensorSpec, standard_catalog


def test_spec_validation():
    with pytest.raises(ValueError):
        SensorSpec("", "u", 0.0, 1.0, 0.1)
    with pytest.raises(ValueError):
        SensorSpec("t", "u", 1.0, 1.0, 0.1)
    with pytest.raises(ValueError):
        SensorSpec("t", "u", 0.0, 1.0, 0.0)


def test_spec_span():
    spec = SensorSpec("t", "degC", -10.0, 54.0, 0.1)
    assert spec.span == pytest.approx(64.0)


def test_catalog_lookup_and_errors():
    catalog = standard_catalog()
    assert "temp" in catalog
    assert catalog["temp"].unit == "degC"
    with pytest.raises(KeyError, match="known sensors"):
        catalog["wind"]


def test_catalog_duplicate_rejected():
    spec = SensorSpec("t", "u", 0.0, 1.0, 0.1)
    with pytest.raises(ValueError):
        SensorCatalog([spec, spec])


def test_catalog_order_and_names():
    catalog = standard_catalog()
    assert catalog.names[0] == "temp"
    assert len(catalog) == 6
    assert [spec.name for spec in catalog] == catalog.names


def test_subset_preserves_given_order():
    catalog = standard_catalog()
    subset = catalog.subset(["x", "temp"])
    assert subset.names == ["x", "temp"]


def test_with_area_rewrites_coordinates_only():
    catalog = standard_catalog(area_side_m=600.0)
    assert catalog["x"].max_value == 600.0
    assert catalog["y"].max_value == 600.0
    assert catalog["temp"].max_value == standard_catalog()["temp"].max_value


def test_standard_ranges_cover_default_fields():
    """Generous ranges: the synthetic fields must never clamp (see §V-B
    discussion in repro.data.sensors)."""
    import numpy as np

    from repro.data.relations import default_fields

    catalog = standard_catalog(area_side_m=1000.0)
    fields = default_fields(1000.0, seed=0)
    rng = np.random.default_rng(0)
    xs, ys = rng.uniform(0, 1000, 2000), rng.uniform(0, 1000, 2000)
    for name, field in fields.items():
        values = field.sample(xs, ys)
        spec = catalog[name]
        assert values.min() > spec.min_value, name
        assert values.max() < spec.max_value, name
