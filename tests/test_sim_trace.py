"""Tracer tests, including the SENS-Join protocol trace."""

import pytest

from repro.joins.runner import run_snapshot
from repro.joins.sensjoin import SensJoin
from repro.sim.trace import ListTracer, NullTracer, TraceEvent


class TestTracerBasics:
    def test_null_tracer_swallows(self):
        tracer = NullTracer()
        tracer.emit(0.0, 1, "anything", foo=1)  # must not raise

    def test_list_tracer_records(self):
        tracer = ListTracer()
        tracer.emit(1.5, 7, "kind-a", detail=3)
        tracer.emit(2.0, 8, "kind-b")
        assert len(tracer) == 2
        assert tracer.events[0].time == 1.5
        assert tracer.events[0].detail == {"detail": 3}
        assert tracer.kinds() == {"kind-a", "kind-b"}

    def test_filtering(self):
        tracer = ListTracer()
        for i in range(5):
            tracer.emit(float(i), i % 2, "tick", index=i)
        assert len(tracer.filter(node_id=0)) == 3
        assert len(tracer.filter(kind="tick")) == 5
        assert len(tracer.filter(kind="tock")) == 0
        assert len(tracer.filter(predicate=lambda e: e.detail["index"] > 2)) == 2

    def test_event_str(self):
        event = TraceEvent(1.25, 3, "treecut-exit", {"tuples": 2})
        text = str(event)
        assert "treecut-exit" in text and "tuples=2" in text and "node " in text

    def test_iteration(self):
        tracer = ListTracer()
        tracer.emit(0.0, 1, "x")
        assert [e.kind for e in tracer] == ["x"]


class TestProtocolTrace:
    def test_sensjoin_emits_protocol_events(self, small_network, small_world, tail_query):
        tracer = ListTracer()
        run_snapshot(
            small_network, small_world, tail_query(1.5),
            SensJoin(tracer=tracer), tree_seed=11,
        )
        kinds = tracer.kinds()
        assert "treecut-exit" in kinds
        assert "proxy-store" in kinds
        assert "send-join-atts" in kinds
        assert "filter-broadcast" in kinds
        assert "final-send" in kinds

    def test_trace_counts_match_details(self, small_network, small_world, tail_query):
        tracer = ListTracer()
        outcome = run_snapshot(
            small_network, small_world, tail_query(1.5),
            SensJoin(tracer=tracer), tree_seed=11,
        )
        assert len(tracer.filter(kind="treecut-exit")) == outcome.details["treecut_exited"]
        assert len(tracer.filter(kind="proxy-store")) == outcome.details["treecut_proxies"]
        assert (
            len(tracer.filter(kind="filter-broadcast"))
            == outcome.details["filter_broadcasts"]
        )
        assert len(tracer.filter(kind="final-send")) == outcome.details["final_senders"]

    def test_pruned_subtrees_traced(self, small_network, small_world, tail_query):
        tracer = ListTracer()
        outcome = run_snapshot(
            small_network, small_world, tail_query(2.5),
            SensJoin(tracer=tracer), tree_seed=11,
        )
        assert (
            len(tracer.filter(kind="filter-pruned"))
            == outcome.details["filter_pruned_subtrees"]
        )
