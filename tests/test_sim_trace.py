"""Tracer tests, including the SENS-Join protocol trace."""

import re
from collections import Counter
from pathlib import Path

import pytest

from repro.joins.runner import run_snapshot
from repro.joins.sensjoin import SensJoin
from repro.sim.trace import (
    KNOWN_EVENT_KINDS,
    ListTracer,
    NullTracer,
    RingTracer,
    TraceEvent,
    register_event_kind,
)


class TestTracerBasics:
    def test_null_tracer_swallows(self):
        tracer = NullTracer()
        tracer.emit(0.0, 1, "anything", foo=1)  # must not raise

    def test_list_tracer_records(self):
        tracer = ListTracer()
        tracer.emit(1.5, 7, "kind-a", detail=3)
        tracer.emit(2.0, 8, "kind-b")
        assert len(tracer) == 2
        assert tracer.events[0].time == 1.5
        assert tracer.events[0].detail == {"detail": 3}
        assert tracer.kinds() == {"kind-a", "kind-b"}

    def test_filtering(self):
        tracer = ListTracer()
        for i in range(5):
            tracer.emit(float(i), i % 2, "tick", index=i)
        assert len(tracer.filter(node_id=0)) == 3
        assert len(tracer.filter(kind="tick")) == 5
        assert len(tracer.filter(kind="tock")) == 0
        assert len(tracer.filter(predicate=lambda e: e.detail["index"] > 2)) == 2

    def test_event_str(self):
        event = TraceEvent(1.25, 3, "treecut-exit", {"tuples": 2})
        text = str(event)
        assert "treecut-exit" in text and "tuples=2" in text and "node " in text

    def test_iteration(self):
        tracer = ListTracer()
        tracer.emit(0.0, 1, "x")
        assert [e.kind for e in tracer] == ["x"]

    def test_counts_by_kind_is_counter(self):
        tracer = ListTracer()
        for _ in range(3):
            tracer.emit(0.0, 1, "a")
        tracer.emit(0.0, 1, "b")
        counts = tracer.counts_by_kind()
        assert isinstance(counts, Counter)
        assert counts == {"a": 3, "b": 1}
        assert counts.most_common(1) == [("a", 3)]
        assert counts["never-seen"] == 0  # Counter semantics, no KeyError

    def test_event_str_non_scalar_detail(self):
        # Sets render sorted (deterministic regardless of insertion order)
        # and long representations are elided, never dumped wholesale.
        event = TraceEvent(0.5, 1, "subtree-store", {"points": {3, 1, 2}})
        assert "points={1, 2, 3}" in str(event)
        event = TraceEvent(0.5, 1, "subtree-store", {"d": {"b": 2, "a": 1}})
        assert "d={'a': 1, 'b': 2}" in str(event)
        big = TraceEvent(0.5, 1, "subtree-store", {"points": set(range(1000))})
        rendered = str(big)
        assert rendered.endswith("...")
        assert len(rendered) < 120

    def test_event_str_scalar_detail_unchanged(self):
        event = TraceEvent(1.25, 3, "treecut-exit", {"tuples": 2, "note": "hi"})
        assert "tuples=2" in str(event) and "note=hi" in str(event)


class TestRingTracer:
    def test_bounded_and_counts_drops(self):
        tracer = RingTracer(capacity=3)
        for i in range(5):
            tracer.emit(float(i), i, "tick", index=i)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        # The *most recent* events survive.
        assert [e.detail["index"] for e in tracer] == [2, 3, 4]

    def test_no_drops_under_capacity(self):
        tracer = RingTracer(capacity=10)
        tracer.emit(0.0, 1, "tick")
        assert tracer.dropped == 0 and len(tracer) == 1

    def test_query_api_shared_with_list_tracer(self):
        tracer = RingTracer(capacity=8)
        for i in range(4):
            tracer.emit(float(i), i % 2, "tick", index=i)
        assert len(tracer.filter(node_id=0)) == 2
        assert tracer.kinds() == {"tick"}
        assert tracer.counts_by_kind() == {"tick": 4}

    @pytest.mark.parametrize("capacity", [0, -1])
    def test_rejects_non_positive_capacity(self, capacity):
        with pytest.raises(ValueError):
            RingTracer(capacity=capacity)


class TestEventKindRegistry:
    def test_register_is_idempotent(self):
        kind = register_event_kind("test-custom-kind")
        assert kind == "test-custom-kind"
        assert kind in KNOWN_EVENT_KINDS
        register_event_kind("test-custom-kind")  # no error, no duplicate

    @pytest.mark.parametrize("bad", ["", None, 7])
    def test_register_rejects_non_strings(self, bad):
        with pytest.raises(ValueError):
            register_event_kind(bad)

    def test_no_stray_literal_kinds_in_source(self):
        """Grep-proof: every ``tracer.emit(...)`` in the package passes a
        named constant, never a free-form string literal."""
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        literal_kind = re.compile(
            r"""\.emit\(\s*[^,)]+,\s*[^,)]+,\s*(["'])([a-z0-9-]+)\1"""
        )
        offenders = []
        for path in sorted(src.rglob("*.py")):
            for number, line in enumerate(path.read_text().splitlines(), 1):
                match = literal_kind.search(line)
                if match:
                    offenders.append(f"{path.name}:{number}: {match.group(2)!r}")
        assert not offenders, (
            "emit() called with a literal kind instead of a trace.py "
            f"constant: {offenders}"
        )

    def test_traced_run_emits_only_registered_kinds(
        self, small_network, small_world, tail_query
    ):
        tracer = ListTracer()
        run_snapshot(
            small_network, small_world, tail_query(1.5),
            SensJoin(tracer=tracer), tree_seed=11,
        )
        assert tracer.kinds() <= KNOWN_EVENT_KINDS


class TestProtocolTrace:
    def test_sensjoin_emits_protocol_events(self, small_network, small_world, tail_query):
        tracer = ListTracer()
        run_snapshot(
            small_network, small_world, tail_query(1.5),
            SensJoin(tracer=tracer), tree_seed=11,
        )
        kinds = tracer.kinds()
        assert "treecut-exit" in kinds
        assert "proxy-store" in kinds
        assert "send-join-atts" in kinds
        assert "filter-broadcast" in kinds
        assert "final-send" in kinds

    def test_trace_counts_match_details(self, small_network, small_world, tail_query):
        tracer = ListTracer()
        outcome = run_snapshot(
            small_network, small_world, tail_query(1.5),
            SensJoin(tracer=tracer), tree_seed=11,
        )
        assert len(tracer.filter(kind="treecut-exit")) == outcome.details["treecut_exited"]
        assert len(tracer.filter(kind="proxy-store")) == outcome.details["treecut_proxies"]
        assert (
            len(tracer.filter(kind="filter-broadcast"))
            == outcome.details["filter_broadcasts"]
        )
        assert len(tracer.filter(kind="final-send")) == outcome.details["final_senders"]

    def test_pruned_subtrees_traced(self, small_network, small_world, tail_query):
        tracer = ListTracer()
        outcome = run_snapshot(
            small_network, small_world, tail_query(2.5),
            SensJoin(tracer=tracer), tree_seed=11,
        )
        assert (
            len(tracer.filter(kind="filter-pruned"))
            == outcome.details["filter_pruned_subtrees"]
        )
