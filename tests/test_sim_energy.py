"""Energy model tests, including the paper's §IV-B footnote property."""

import pytest

from repro.sim.energy import EnergyLedger, EnergyModel


def test_tx_cost_is_affine():
    model = EnergyModel(tx_per_packet=100.0, tx_per_byte=2.0)
    assert model.tx_cost(0) == 100.0
    assert model.tx_cost(10) == 120.0


def test_rx_cost_is_affine():
    model = EnergyModel(rx_per_packet=50.0, rx_per_byte=1.0)
    assert model.rx_cost(0) == 50.0
    assert model.rx_cost(48) == 98.0


def test_negative_payload_rejected():
    model = EnergyModel()
    with pytest.raises(ValueError):
        model.tx_cost(-1)
    with pytest.raises(ValueError):
        model.rx_cost(-1)


def test_paper_footnote_small_shrink_small_saving():
    """§IV-B footnote 1: removing ~10 bytes from a packet saves ~5%.

    This is the quantitative motivation for Treecut: trimming a tuple to its
    join attributes barely helps while the packet count stays the same.
    """
    model = EnergyModel()  # MicaZ-like defaults
    saving = model.relative_saving_from_shrinking(48, 10)
    assert 0.02 <= saving <= 0.10


def test_shrink_bounds_validated():
    model = EnergyModel()
    with pytest.raises(ValueError):
        model.relative_saving_from_shrinking(20, 30)
    with pytest.raises(ValueError):
        model.relative_saving_from_shrinking(20, -1)


def test_ledger_accumulates_tx_and_rx():
    ledger = EnergyLedger()
    ledger.charge_tx(40, packets=1)
    ledger.charge_tx(96, packets=2)
    ledger.charge_rx(40, packets=1)
    assert ledger.tx_packets == 3
    assert ledger.tx_bytes == 136
    assert ledger.rx_packets == 1
    assert ledger.rx_bytes == 40
    assert ledger.total_energy == ledger.tx_energy + ledger.rx_energy
    assert ledger.tx_energy > 0 and ledger.rx_energy > 0


def test_ledger_charge_returns_cost():
    ledger = EnergyLedger()
    cost = ledger.charge_tx(10, packets=1)
    assert cost == ledger.tx_energy


def test_ledger_zero_packets_charges_bytes_only():
    ledger = EnergyLedger()
    ledger.charge_tx(0, packets=0)
    assert ledger.tx_energy == 0.0


def test_ledger_negative_packets_rejected():
    ledger = EnergyLedger()
    with pytest.raises(ValueError):
        ledger.charge_tx(10, packets=-1)


def test_ledger_reset():
    ledger = EnergyLedger()
    ledger.charge_tx(48, 1)
    ledger.charge_rx(48, 1)
    ledger.reset()
    assert ledger.total_energy == 0.0
    assert ledger.tx_packets == ledger.rx_packets == 0
    assert ledger.tx_bytes == ledger.rx_bytes == 0


def test_per_packet_overhead_dominates_default_model():
    """The default parameters must make packet count the primary cost."""
    model = EnergyModel()
    one_full = model.tx_cost(48)
    two_small = 2 * model.tx_cost(24)
    assert two_small > one_full
