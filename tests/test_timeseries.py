"""Time-series observability: sampling, rolling windows, SLOs, export.

Covers the contracts ``docs/observability.md`` adds on top of the static
registry view:

* :class:`Series` rings are bounded and honest about eviction (``dropped``);
* :class:`WindowedAggregate` statistics match a brute-force recomputation;
* the sampler's drive modes (kernel process, ``advance_to``, ``flush``)
  land ticks on the same deterministic grid;
* SLO breaches emit ``slo-violation`` events and count per policy;
* the ``series`` record round-trips through the JSONL export, and exports
  without series stay byte-identical to the pre-series schema.
"""

import io

import pytest

from repro.errors import ReproError, TraceFormatError
from repro.obs import (
    MetricsSampler,
    Series,
    SloPolicy,
    Telemetry,
    WindowedAggregate,
    read_jsonl,
    write_jsonl,
)
from repro.sim.kernel import Environment, SimulationError
from repro.sim.trace import ListTracer, SLO_VIOLATION


# -- Series ------------------------------------------------------------------


class TestSeries:
    def test_append_and_read_back(self):
        series = Series("energy", {"node": 3})
        series.append(0.0, 1.0)
        series.append(1.0, 2.5)
        assert series.points == [(0.0, 1.0), (1.0, 2.5)]
        assert series.times() == [0.0, 1.0]
        assert series.values() == [1.0, 2.5]
        assert series.last == (1.0, 2.5)
        assert len(series) == 2

    def test_ring_evicts_oldest_and_counts_dropped(self):
        series = Series("s", capacity=3)
        for tick in range(5):
            series.append(float(tick), float(tick * 10))
        assert series.dropped == 2
        assert series.points == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]

    def test_rejects_backwards_time(self):
        series = Series("s")
        series.append(2.0, 1.0)
        with pytest.raises(ValueError, match="backwards"):
            series.append(1.0, 1.0)
        series.append(2.0, 2.0)  # equal times are fine (same-instant events)

    def test_rejects_non_finite(self):
        series = Series("s")
        with pytest.raises(ValueError, match="finite"):
            series.append(float("nan"), 1.0)
        with pytest.raises(ValueError, match="finite"):
            series.append(0.0, float("inf"))
        assert len(series) == 0

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            Series("")
        with pytest.raises(ValueError):
            Series("s", capacity=0)


# -- WindowedAggregate -------------------------------------------------------


class TestWindowedAggregate:
    def test_statistics_match_brute_force(self):
        window = WindowedAggregate(10.0)
        samples = [(0.0, 5.0), (2.0, 1.0), (4.0, 9.0), (6.0, 3.0)]
        for time_s, value in samples:
            window.observe(time_s, value)
        values = [v for _, v in samples]
        assert window.count == 4
        assert window.sum == pytest.approx(sum(values))
        assert window.mean == pytest.approx(sum(values) / 4)
        assert window.minimum == 1.0
        assert window.maximum == 9.0
        assert window.percentile(0.0) == 1.0
        assert window.percentile(1.0) == 9.0
        assert window.rate() == pytest.approx(4 / 10.0)

    def test_eviction_past_window(self):
        window = WindowedAggregate(5.0)
        window.observe(0.0, 100.0)
        window.observe(4.0, 1.0)
        window.observe(6.0, 2.0)  # 0.0 falls out (horizon 1.0)
        assert window.count == 2
        assert window.maximum == 2.0
        window.advance(20.0)  # idle tick clears everything
        assert window.count == 0
        assert window.sum == 0.0
        assert window.mean == 0.0

    def test_eviction_with_duplicate_values(self):
        window = WindowedAggregate(3.0)
        window.observe(0.0, 7.0)
        window.observe(1.0, 7.0)
        window.observe(5.0, 7.0)  # evicts both old sevens, keeps one
        assert window.count == 1
        assert window.sum == pytest.approx(7.0)

    def test_rejects_backwards_time(self):
        window = WindowedAggregate(5.0)
        window.observe(3.0, 1.0)
        with pytest.raises(ValueError, match="backwards"):
            window.observe(2.0, 1.0)

    def test_percentile_bounds(self):
        window = WindowedAggregate(5.0)
        assert window.percentile(0.5) == 0.0  # empty -> 0
        with pytest.raises(ValueError):
            window.percentile(1.5)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowedAggregate(0.0)


# -- SloPolicy ---------------------------------------------------------------


class TestSloPolicy:
    def test_needs_at_least_one_bound(self):
        with pytest.raises(ValueError, match="max_value and/or min_value"):
            SloPolicy(name="p", series="s")

    def test_bounds(self):
        policy = SloPolicy(name="p", series="s", max_value=2.0, min_value=1.0)
        assert policy.ok(1.5)
        assert not policy.ok(2.5)
        assert not policy.ok(0.5)
        assert "<= 2" in policy.bound_text() and ">= 1" in policy.bound_text()

    def test_sampler_rejects_duplicate_policy_names(self):
        policies = (
            SloPolicy(name="p", series="a", max_value=1.0),
            SloPolicy(name="p", series="b", max_value=2.0),
        )
        with pytest.raises(ValueError, match="duplicate"):
            MetricsSampler(policies=policies)


# -- MetricsSampler ----------------------------------------------------------


class TestMetricsSampler:
    def test_series_get_or_create_and_deterministic_order(self):
        sampler = MetricsSampler()
        a = sampler.series("x", node=2)
        b = sampler.series("x", node=1)
        assert sampler.series("x", node=2) is a
        assert [s.labels for s in sampler.all_series()] == [
            {"node": 1}, {"node": 2},
        ]
        assert b.name == "x"

    def test_advance_to_lands_on_period_grid(self):
        ticks = []
        sampler = MetricsSampler(period_s=0.5)
        sampler.add_probe(lambda now: ticks.append(now) or ())
        assert sampler.advance_to(2.6) == 5
        assert ticks == [0.5, 1.0, 1.5, 2.0, 2.5]
        # A second advance continues from the last tick, no replays.
        assert sampler.advance_to(2.6) == 0
        assert sampler.advance_to(3.1) == 1
        assert ticks[-1] == 3.0

    def test_flush_takes_one_off_grid_sample(self):
        sampler = MetricsSampler(period_s=1.0)
        sampler.add_probe(lambda now: [("g", {}, now)])
        sampler.advance_to(2.0)
        assert sampler.flush(2.3) is True
        assert sampler.flush(2.3) is False  # not newer than the last sample
        assert sampler.series("g").times() == [1.0, 2.0, 2.3]

    def test_probe_readings_become_series(self):
        sampler = MetricsSampler(period_s=1.0)
        sampler.add_probe(lambda now: [("a", {}, now * 2), ("b", {"n": 1}, 7.0)])
        sampler.sample(1.0)
        sampler.sample(2.0)
        assert sampler.series("a").values() == [2.0, 4.0]
        assert sampler.series("b", n=1).values() == [7.0, 7.0]
        assert sampler.samples_taken == 2
        assert sampler.last_sample_s == 2.0

    def test_watch_counters_snapshots_registry_totals(self):
        telemetry = Telemetry.capture()
        sampler = MetricsSampler(telemetry=telemetry, period_s=1.0)
        sampler.watch_counters(["tx_packets_total"])
        telemetry.registry.counter("tx_packets_total", node=1).inc(3)
        sampler.sample(1.0)
        telemetry.registry.counter("tx_packets_total", node=2).inc(2)
        sampler.sample(2.0)
        assert sampler.series("tx_packets_total").values() == [3.0, 5.0]

    def test_dropped_aggregates_ring_overflow(self):
        sampler = MetricsSampler(period_s=1.0, capacity=2)
        sampler.add_probe(lambda now: [("g", {}, now)])
        sampler.advance_to(5.0)
        assert sampler.dropped == 3

    def test_watch_network_rejects_double_watch(self):
        from repro.sim.network import DeploymentConfig, deploy_grid

        network = deploy_grid(DeploymentConfig(node_count=9, area_side_m=100.0))
        sampler = MetricsSampler()
        sampler.watch_network(network)
        with pytest.raises(ReproError, match="already watches"):
            sampler.watch_network(network)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            MetricsSampler(period_s=0.0)
        with pytest.raises(ValueError):
            MetricsSampler(capacity=0)

    def test_slo_violation_emits_event_and_counts(self):
        telemetry = Telemetry.capture()
        sampler = MetricsSampler(
            telemetry=telemetry,
            period_s=1.0,
            policies=(SloPolicy(name="cap", series="g", max_value=5.0),),
        )
        sampler.add_probe(lambda now: [("g", {}, now)])  # breaches after t=5
        sampler.advance_to(8.0)
        events = [e for e in telemetry.tracer.events if e.kind == SLO_VIOLATION]
        assert len(events) == 3  # t=6, 7, 8
        assert events[0].detail["policy"] == "cap"
        assert events[0].detail["value"] == 6.0
        assert events[0].detail["bound"] == "<= 5"
        assert sampler.violations == {"cap": 3}
        assert (
            telemetry.registry.total("slo_violations_total", policy="cap") == 3
        )

    def test_slo_over_null_telemetry_is_safe(self):
        sampler = MetricsSampler(
            period_s=1.0,
            policies=(SloPolicy(name="cap", series="g", max_value=0.0),),
        )
        sampler.add_probe(lambda now: [("g", {}, 1.0)])
        sampler.sample(1.0)  # must not raise; series still record
        assert sampler.violations == {"cap": 1}
        assert sampler.series("g").values() == [1.0]


# -- kernel integration ------------------------------------------------------


class TestKernelSampling:
    def test_environment_every_fires_on_grid(self):
        env = Environment()
        ticks = []
        env.every(1.0, ticks.append)

        def workload():
            yield env.timeout(5.2)

        env.run(until=env.process(workload()))
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_environment_every_until_bound(self):
        env = Environment()
        ticks = []
        env.every(1.0, ticks.append, until=2.5)

        def workload():
            yield env.timeout(6.0)

        env.run(until=env.process(workload()))
        assert ticks == [1.0, 2.0]

    def test_environment_every_rejects_bad_period(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.every(0.0, lambda now: None)

    def test_sampler_attach_samples_on_kernel_clock(self):
        env = Environment()
        sampler = MetricsSampler(period_s=0.5)
        sampler.add_probe(lambda now: [("g", {}, now)])
        sampler.attach(env)

        def workload():
            yield env.timeout(2.2)

        env.run(until=env.process(workload()))
        assert sampler.series("g").times() == [0.5, 1.0, 1.5, 2.0]

    def test_sampled_des_run_produces_node_series(self, make_deployment):
        from repro.joins.des_sensjoin import DesSensJoin
        from repro.joins.runner import run_snapshot
        from repro.query.parser import parse_query
        from repro.routing.ctp import build_tree

        network, world = make_deployment(node_count=25, seed=3)
        tree = build_tree(network, seed=3)
        query = parse_query(
            "SELECT A.hum, B.hum FROM sensors A, sensors B "
            "WHERE A.temp - B.temp > 1.0 ONCE"
        )
        telemetry = Telemetry.capture()
        sampler = MetricsSampler(telemetry=telemetry, period_s=0.01)
        sampler.watch_network(network, battery_j=1e9)
        sampler.watch_tree(lambda: tree)
        algo = DesSensJoin(telemetry=telemetry, sampler=sampler)
        run_snapshot(
            network, world, query, algorithm=algo, tree=tree,
            telemetry=telemetry,
        )
        assert sampler.samples_taken > 0
        names = {series.name for series in sampler.all_series()}
        assert {
            "node_energy_j", "node_residual_j", "node_tx_packets",
            "node_rx_packets", "node_tree_depth", "tree_height",
        } <= names
        # Energy and residual mirror each other around the battery budget.
        for series in sampler.all_series():
            if series.name != "node_energy_j":
                continue
            node = series.labels["node"]
            residual = sampler.series("node_residual_j", node=node)
            for (_, spent), (_, left) in zip(series, residual):
                assert spent + left == pytest.approx(1e9)


# -- export round trip -------------------------------------------------------


def _sampled_export() -> str:
    telemetry = Telemetry.capture()
    sampler = MetricsSampler(telemetry=telemetry, period_s=1.0, capacity=4)
    sampler.add_probe(lambda now: [("g", {}, now), ("h", {"node": 1}, now * 2)])
    sampler.advance_to(6.0)  # overflows the capacity-4 ring
    telemetry.registry.counter("tx_packets_total").inc(3)
    buffer = io.StringIO()
    write_jsonl(
        buffer,
        tracer=telemetry.tracer,
        registry=telemetry.registry,
        series=sampler.all_series(),
    )
    return buffer.getvalue()


class TestSeriesExport:
    def test_round_trip_is_byte_identical(self):
        text = _sampled_export()
        log = read_jsonl(io.StringIO(text))
        again = io.StringIO()
        write_jsonl(
            again,
            events=log.events,
            registry=log.registry(),
            meta=log.meta,
            dropped=log.dropped,
            series=log.series,
        )
        assert again.getvalue() == text

    def test_series_content_and_dropped_survive(self):
        log = read_jsonl(io.StringIO(_sampled_export()))
        assert len(log.series) == 2
        g = log.series_named("g")[0]
        assert g.labels == {}
        assert g.points == [(3.0, 3.0), (4.0, 4.0), (5.0, 5.0), (6.0, 6.0)]
        assert g.dropped == 2
        assert log.series_dropped() == 4
        h = log.series_named("h")[0]
        assert h.labels == {"node": 1}
        assert h.last == (6.0, 12.0)

    def test_trailer_counts_series(self):
        text = _sampled_export()
        assert '"series":2' in text.strip().splitlines()[-1]

    def test_no_series_key_when_absent(self):
        """Sampler-free exports must stay byte-identical to the pre-series
        schema: no ``series`` records, no ``series`` trailer key."""
        telemetry = Telemetry.capture()
        telemetry.registry.counter("c").inc()
        buffer = io.StringIO()
        write_jsonl(
            buffer, tracer=telemetry.tracer, registry=telemetry.registry
        )
        text = buffer.getvalue()
        assert '"record":"series"' not in text
        assert '"series"' not in text.strip().splitlines()[-1]
        assert read_jsonl(io.StringIO(text)).series == []

    def test_trailer_series_count_mismatch_rejected(self):
        lines = _sampled_export().strip().splitlines()
        lines[-1] = lines[-1].replace('"series":2', '"series":7')
        with pytest.raises(TraceFormatError, match="series"):
            read_jsonl(io.StringIO("\n".join(lines) + "\n"))

    def test_malformed_series_record_rejected(self):
        text = _sampled_export()
        bad = text.replace('"points":[[', '"points":[[null,')
        with pytest.raises(TraceFormatError):
            read_jsonl(io.StringIO(bad))

    def test_unknown_series_version_rejected(self):
        text = _sampled_export()
        bad = text.replace(
            '"record":"series","version":1', '"record":"series","version":99'
        )
        with pytest.raises(TraceFormatError, match="version"):
            read_jsonl(io.StringIO(bad))


# -- broker integration ------------------------------------------------------


class TestBrokerSampling:
    @pytest.fixture(scope="class")
    def sampled_run(self, make_deployment):
        from repro.query.parser import parse_query
        from repro.service.broker import (
            BrokerConfig, DeadlinePolicy, QueryBroker,
        )
        from repro.service.workloads import QueryRequest
        from repro.sim.faults import ChurnModel

        network, world = make_deployment(node_count=40, seed=11)
        query = parse_query(
            "SELECT A.hum, B.hum FROM sensors A, sensors B "
            "WHERE A.temp - B.temp > 1.0 ONCE"
        )
        requests = [
            QueryRequest(
                query_id=i, arrival_s=i * 30.0, template_index=0, query=query
            )
            for i in range(4)
        ]
        telemetry = Telemetry.capture()
        sampler = MetricsSampler(
            telemetry=telemetry,
            period_s=10.0,
            policies=(
                SloPolicy(
                    name="latency-p95",
                    series="broker_wave_latency_p95_s",
                    max_value=1e-6,  # impossible: every sampled wave breaches
                ),
            ),
        )
        sampler.watch_network(network)
        churn = ChurnModel(
            departure_rate=0.0004, rejoin_delay_s=30.0, rejoin_jitter_m=4.0,
            horizon_s=200.0, seed=2,
        )
        broker = QueryBroker(
            network, world,
            config=BrokerConfig(
                concurrency=2, deadline=DeadlinePolicy(timeout_s=90.0)
            ),
            telemetry=telemetry, churn=churn, sampler=sampler,
        )
        report = broker.run(requests)
        return report, sampler, telemetry

    def test_broker_feeds_service_series(self, sampled_run):
        report, sampler, _ = sampled_run
        names = {series.name for series in sampler.all_series()}
        assert {
            "broker_throughput_qps", "broker_retry_rate",
            "broker_deadline_miss_rate", "broker_shed_rate",
            "node_energy_j",
        } <= names
        assert sampler.samples_taken > 0
        # The flush lands exactly on the report makespan.
        assert sampler.last_sample_s == pytest.approx(
            report.details["makespan_s"]
        )

    def test_node_gauges_cumulative_across_epoch_resets(self, sampled_run):
        _, sampler, _ = sampled_run
        checked = 0
        for series in sampler.all_series():
            if series.name != "node_energy_j":
                continue
            values = series.values()
            assert values == sorted(values), (
                f"node {series.labels} energy saw-toothed: {values}"
            )
            checked += 1
        assert checked > 0

    def test_slo_breaches_traced_per_policy(self, sampled_run):
        _, sampler, telemetry = sampled_run
        events = [
            e for e in telemetry.tracer.events if e.kind == SLO_VIOLATION
        ]
        assert events, "impossible p95 bound never fired"
        assert sampler.violations["latency-p95"] == len(events)
        assert telemetry.registry.total(
            "slo_violations_total", policy="latency-p95"
        ) == len(events)
