"""Documentation smoke tests: the README's code must actually run."""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def python_blocks(markdown: str):
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.DOTALL)


def test_readme_quickstart_executes():
    readme = (REPO_ROOT / "README.md").read_text()
    blocks = python_blocks(readme)
    assert blocks, "README must contain a quickstart code block"
    namespace: dict = {}
    exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)  # noqa: S102
    report = namespace["report"]
    assert report.transmissions > 0
    assert report.rows is not None


def test_readme_references_existing_files():
    readme = (REPO_ROOT / "README.md").read_text()
    for relative in re.findall(r"`(examples/[a-z_]+\.py)`", readme):
        assert (REPO_ROOT / relative).exists(), relative
    for name in ("DESIGN.md", "EXPERIMENTS.md"):
        assert name in readme
        assert (REPO_ROOT / name).exists()


def test_design_doc_references_real_modules():
    import importlib

    design = (REPO_ROOT / "DESIGN.md").read_text()
    for reference in sorted(set(re.findall(r"`(repro\.[a-z_.]+)`", design))):
        reference = reference.rstrip(".")
        if reference.endswith(".*"):
            reference = reference[:-2]
        # References may name a module or a module attribute (function).
        try:
            importlib.import_module(reference)
        except ModuleNotFoundError:
            module_name, _, attribute = reference.rpartition(".")
            module = importlib.import_module(module_name)
            assert hasattr(module, attribute), reference


def test_experiments_doc_mentions_every_figure():
    experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
    for figure in ("Fig. 10", "Fig. 11", "Fig. 12", "Fig. 13", "Fig. 14",
                   "Fig. 15", "Fig. 16"):
        assert figure in experiments, figure


def test_every_example_has_docstring_and_main():
    for example in sorted((REPO_ROOT / "examples").glob("*.py")):
        text = example.read_text()
        assert text.lstrip().startswith('"""'), example.name
        assert '__main__' in text, example.name


def test_paper_mapping_references_real_paths():
    mapping = (REPO_ROOT / "docs" / "paper_mapping.md").read_text()
    for relative in set(re.findall(r"`((?:repro|examples|benchmarks|tests|docs)/[A-Za-z0-9_./]+\.(?:py|md))`", mapping)):
        path = REPO_ROOT / relative
        if relative.startswith("repro/"):
            path = REPO_ROOT / "src" / relative
        assert path.exists(), relative


def test_relative_markdown_links_resolve():
    """Every relative link in docs/*.md + the top-level docs points at a file.

    Reuses the checker CI runs (``scripts/check_doc_links.py``) so the test
    and the workflow cannot disagree about what counts as broken.
    """
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_doc_links", REPO_ROOT / "scripts" / "check_doc_links.py"
    )
    checker = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(checker)

    files = sorted((REPO_ROOT / "docs").glob("*.md"))
    files += [REPO_ROOT / name for name in checker.DEFAULT_FILES]
    assert files, "docs/*.md must exist"
    broken = {
        str(path.relative_to(REPO_ROOT)): checker.broken_links(path)
        for path in files
    }
    assert all(not links for links in broken.values()), broken


def test_benchmarking_doc_references_real_names():
    doc = (REPO_ROOT / "docs" / "benchmarking.md").read_text()
    from repro.bench import harness

    # The experiment->figure table must cover the whole registry.
    for name in harness.experiment_specs(60):
        assert f"`{name}`" in doc, name
    for keyword in ("cache key", "--jobs", "--no-cache", "run_manifest.json",
                    "byte-identical"):
        assert keyword in doc, keyword


def test_wire_format_spec_exists_and_mentions_key_fields():
    spec = (REPO_ROOT / "docs" / "wire_format.md").read_text()
    for keyword in ("presence mask", "Z-number", "relation_flags",
                    "Decomposition threshold", "Canonicity"):
        assert keyword in spec, keyword


def _load_checker():
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_doc_links", REPO_ROOT / "scripts" / "check_doc_links.py"
    )
    checker = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(checker)
    return checker


def test_no_orphaned_docs_pages():
    """Every docs/*.md must be reachable from README.md via links."""
    checker = _load_checker()
    assert checker.orphaned_docs() == []


def test_orphan_detection_catches_unlinked_page(tmp_path):
    """The checker must flag a docs page nothing links to."""
    checker = _load_checker()
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text("see [linked](docs/linked.md)\n")
    (tmp_path / "docs" / "linked.md").write_text("fine\n")
    (tmp_path / "docs" / "orphan.md").write_text("nobody links here\n")
    checker.REPO_ROOT = tmp_path
    try:
        orphans = checker.orphaned_docs()
    finally:
        checker.REPO_ROOT = REPO_ROOT
    assert [p.name for p in orphans] == ["orphan.md"]


def test_orphan_detection_follows_transitive_links(tmp_path):
    """Reachability is transitive: README -> a -> b keeps b un-orphaned."""
    checker = _load_checker()
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text("see [a](docs/a.md)\n")
    (tmp_path / "docs" / "a.md").write_text("see [b](b.md)\n")
    (tmp_path / "docs" / "b.md").write_text("leaf\n")
    checker.REPO_ROOT = tmp_path
    try:
        orphans = checker.orphaned_docs()
    finally:
        checker.REPO_ROOT = REPO_ROOT
    assert orphans == []


def test_service_doc_references_real_names():
    doc = (REPO_ROOT / "docs" / "service.md").read_text()
    from repro import service

    for name in ("QueryBroker", "BrokerConfig", "WorkloadSpec",
                 "generate_workload", "sharing_signature"):
        assert name in doc, name
        assert hasattr(service, name), name
    for keyword in ("share group", "piggyback", "concurrency",
                    "latency_percentile", "compose_filters"):
        assert keyword in doc, keyword
