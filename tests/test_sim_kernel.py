"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import AllOf, Environment, Event, Interrupt, Process, Timeout


def test_timeout_ordering():
    env = Environment()
    log = []

    def proc(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(proc("late", 2.0))
    env.process(proc("early", 1.0))
    env.run()
    assert log == [(1.0, "early"), (2.0, "late")]


def test_same_time_events_fire_in_insertion_order():
    env = Environment()
    log = []

    def proc(name):
        yield env.timeout(1.0)
        log.append(name)

    for name in "abcd":
        env.process(proc(name))
    env.run()
    assert log == list("abcd")


def test_process_return_value_propagates():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        return 42

    def parent():
        value = yield env.process(child())
        return value + 1

    result = env.run(until=env.process(parent()))
    assert result == 43


def test_event_succeed_payload():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append(value)

    def trigger():
        yield env.timeout(3.0)
        gate.succeed("payload")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert seen == ["payload"]
    assert gate.ok and gate.value == "payload"


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger():
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert caught == ["boom"]


def test_event_cannot_trigger_twice():
    env = Environment()
    gate = env.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_value_before_trigger_is_error():
    env = Environment()
    gate = env.event()
    with pytest.raises(SimulationError):
        _ = gate.value
    with pytest.raises(SimulationError):
        _ = gate.ok


def test_all_of_collects_values_in_order():
    env = Environment()

    def child(delay, value):
        yield env.timeout(delay)
        return value

    processes = [env.process(child(d, v)) for d, v in ((3, "a"), (1, "b"), (2, "c"))]
    result = env.run(until=env.all_of(processes))
    assert result == ["a", "b", "c"]
    assert env.now == 3.0


def test_all_of_empty_fires_immediately():
    env = Environment()
    event = env.all_of([])
    env.run()
    assert event.processed and event.value == []


def test_all_of_fails_on_child_failure():
    env = Environment()
    good = env.timeout(1.0)
    bad = env.event()

    def trigger():
        yield env.timeout(0.5)
        bad.fail(ValueError("child died"))

    env.process(trigger())
    combined = env.all_of([good, bad])
    with pytest.raises(ValueError):
        env.run(until=combined)


def test_interrupt_is_catchable():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append(("interrupted", env.now, interrupt.cause))

    def interrupter(target):
        yield env.timeout(2.0)
        target.interrupt("reason")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert log == [("interrupted", 2.0, "reason")]


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(0.1)

    process = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_run_until_time_advances_clock():
    env = Environment()
    env.process(iter_timeouts(env, [1.0, 1.0, 1.0]))
    env.run(until=1.5)
    assert env.now == 1.5


def iter_timeouts(env, delays):
    for delay in delays:
        yield env.timeout(delay)


def test_run_until_event_deadlock_detected():
    env = Environment()
    never = env.event()
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=never)


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_yielding_non_event_is_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError, match="must yield Event"):
        env.run()


def test_waiting_on_already_processed_event():
    env = Environment()
    early = env.timeout(1.0)
    log = []

    def late_waiter():
        yield env.timeout(5.0)
        yield early  # already fired long ago
        log.append(env.now)

    env.process(late_waiter())
    env.run()
    assert log == [5.0]


def test_peek_and_step():
    env = Environment()
    env.timeout(2.5)
    assert env.peek() == 2.5
    env.step()
    assert env.now == 2.5
    assert env.peek() == float("inf")
    with pytest.raises(SimulationError):
        env.step()


def test_two_processes_communicate_via_events():
    env = Environment()
    mailbox = []
    delivered = env.event()

    def producer():
        yield env.timeout(1.0)
        mailbox.append("message")
        delivered.succeed()

    def consumer():
        yield delivered
        mailbox.append("consumed at %g" % env.now)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert mailbox == ["message", "consumed at 1"]


def test_is_alive_lifecycle():
    env = Environment()

    def proc():
        yield env.timeout(1.0)

    process = env.process(proc())
    assert process.is_alive
    env.run()
    assert not process.is_alive


# -- deferred Timeout triggering ---------------------------------------------


def test_timeout_not_triggered_before_fire_time():
    env = Environment()
    timeout = env.timeout(5.0, value="late")
    assert not timeout.triggered
    with pytest.raises(SimulationError):
        timeout.value
    env.run(until=1.0)
    assert not timeout.triggered
    env.run(until=5.0)
    assert timeout.triggered and timeout.processed
    assert timeout.ok
    assert timeout.value == "late"


def test_timeout_cannot_be_triggered_externally():
    env = Environment()
    timeout = env.timeout(1.0)
    with pytest.raises(SimulationError):
        timeout.succeed()
    with pytest.raises(SimulationError):
        timeout.fail(RuntimeError("boom"))
    env.run()
    assert timeout.ok


def test_timeout_observed_pending_then_fired_by_process():
    env = Environment()
    observations = []

    def observer(watched):
        observations.append(watched.triggered)
        yield env.timeout(3.0)
        observations.append((watched.triggered, watched.value))

    watched = env.timeout(2.0, value=7)
    env.process(observer(watched))
    env.run()
    assert observations == [False, (True, 7)]


# -- run(until=t) clock semantics --------------------------------------------


def test_run_until_advances_clock_to_deadline_without_events():
    env = Environment()
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_deadline_beyond_last_event():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(1.5)
        log.append(env.now)

    env.process(proc())
    env.run(until=10.0)
    assert log == [1.5]
    assert env.now == 10.0


def test_run_until_does_not_fire_later_events():
    env = Environment()
    late = env.timeout(5.0)
    env.run(until=2.0)
    assert env.now == 2.0
    assert not late.triggered
    env.run()
    assert late.triggered


# -- interrupting a process waiting on an already-triggered event -------------


def test_interrupt_while_waiting_on_processed_event():
    env = Environment()
    log = []
    early = env.event()
    early.succeed("early-value")

    def waiter():
        yield env.timeout(1.0)
        try:
            value = yield early  # processed long ago; bridge event pending
            log.append(("value", value))
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause))
        yield env.timeout(1.0)
        log.append(("done", env.now))

    process = env.process(waiter())

    def interrupter():
        yield env.timeout(1.0)
        process.interrupt("now")

    env.process(interrupter())
    env.run()
    # Exactly one of the two wakeups resumed the generator at the yield.
    assert log == [("interrupted", "now"), ("done", 2.0)]


def test_interrupt_on_processed_event_no_double_resume():
    env = Environment()
    resumes = []
    early = env.event()
    early.succeed()

    def waiter():
        yield env.timeout(1.0)
        try:
            yield early
        except Interrupt:
            pass
        resumes.append(env.now)
        yield env.timeout(3.0)
        resumes.append(env.now)

    process = env.process(waiter())

    def interrupter():
        yield env.timeout(1.0)
        process.interrupt()

    env.process(interrupter())
    env.run()
    assert resumes == [1.0, 4.0]


# -- AllOf over processed / failed children -----------------------------------


def test_all_of_mix_of_processed_and_pending_children():
    env = Environment()
    done = env.event()
    done.succeed("first")
    env.run()  # process `done` fully
    assert done.processed
    pending = env.timeout(2.0, value="second")
    combined = env.all_of([done, pending])
    result = env.run(until=combined)
    assert result == ["first", "second"]


def test_all_of_with_failed_child_fails():
    env = Environment()
    ok = env.event()
    ok.succeed()
    bad = env.event()
    bad.fail(RuntimeError("child failed"))
    env.run()  # both children processed
    combined = env.all_of([ok, bad])
    with pytest.raises(RuntimeError, match="child failed"):
        env.run(until=combined)


def test_all_of_processed_failure_seen_by_waiting_process():
    env = Environment()
    log = []
    bad = env.event()
    bad.fail(ValueError("poisoned"))
    env.run()

    def waiter():
        good = env.timeout(1.0)
        try:
            yield env.all_of([good, bad])
        except ValueError as exc:
            log.append(str(exc))

    env.process(waiter())
    env.run()
    assert log == ["poisoned"]


# -- run_until: bounded wait (the §IV-F watchdog primitive) -------------------


def test_run_until_event_fires_before_deadline():
    env = Environment()
    ev = env.timeout(1.0, value="done")
    assert env.run_until(ev, deadline=5.0) is True
    assert env.now == 1.0
    assert ev.processed


def test_run_until_deadline_advances_clock_to_deadline():
    env = Environment()
    ev = env.timeout(10.0)
    assert env.run_until(ev, deadline=5.0) is False
    assert env.now == 5.0
    assert not ev.processed


def test_run_until_queue_drain_keeps_clock_at_stall_instant():
    env = Environment()
    never = env.event()  # nothing will ever trigger this
    env.timeout(2.0)
    # The queue drains at t=2: the simulation is stalled, and the clock must
    # NOT warp to the (far) deadline — recovery acts at the stall instant.
    assert env.run_until(never, deadline=100.0) is False
    assert env.now == 2.0


def test_run_until_already_processed_event_returns_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed()
    env.run()
    assert ev.processed
    assert env.run_until(ev, deadline=0.0) is True
    assert env.now == 0.0


# -- bucketed-queue semantics (the perf rewrite's behavioral contract) -------


def test_zero_delay_events_scheduled_mid_drain_fire_in_same_pass():
    # A callback appending to the *current* time bucket must be drained in
    # insertion order before the clock moves on — the bucketed queue's
    # replacement for the old (time, serial) heap tiebreaker.
    env = Environment()
    log = []

    def child(name):
        # The process-init event lands in the *currently draining* bucket.
        log.append((env.now, name))
        yield env.timeout(1.0)
        log.append((env.now, f"{name}-later"))

    def parent():
        yield env.timeout(1.0)
        log.append((env.now, "parent"))
        env.process(child("child"))

    env.process(parent())
    env.run()
    assert log == [(1.0, "parent"), (1.0, "child"), (2.0, "child-later")]


def test_interleaved_bursts_keep_per_time_insertion_order():
    env = Environment()
    log = []

    def proc(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    # Schedule out of time order, several events per timestamp.
    for name, delay in [("c1", 3.0), ("a1", 1.0), ("c2", 3.0),
                        ("b1", 2.0), ("a2", 1.0), ("b2", 2.0)]:
        env.process(proc(name, delay))
    env.run()
    assert log == [(1.0, "a1"), (1.0, "a2"), (2.0, "b1"),
                   (2.0, "b2"), (3.0, "c1"), (3.0, "c2")]


def test_callback_exception_mid_bucket_leaves_queue_consistent():
    env = Environment()
    log = []

    def ok(name):
        yield env.timeout(1.0)
        log.append(name)

    def boom():
        yield env.timeout(1.0)
        raise RuntimeError("mid-bucket failure")

    env.process(ok("before"))
    env.process(boom())
    env.process(ok("after"))
    with pytest.raises(RuntimeError, match="mid-bucket failure"):
        env.run()
    # The failed event was consumed; the rest of the bucket still fires.
    env.run()
    assert log == ["before", "after"]
    assert env.peek() == float("inf")


def test_step_and_run_drain_buckets_identically():
    def build():
        env = Environment()
        log = []

        def proc(name, delay):
            yield env.timeout(delay)
            log.append((env.now, name))

        for name, delay in [("x", 1.0), ("y", 1.0), ("z", 2.0)]:
            env.process(proc(name, delay))
        return env, log

    run_env, run_log = build()
    run_env.run()

    step_env, step_log = build()
    while step_env.peek() != float("inf"):
        step_env.step()
    assert step_log == run_log
