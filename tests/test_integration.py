"""End-to-end property tests across the whole stack.

The central theorem of the reproduction: for *any* deployment, data, query
and configuration, SENS-Join computes exactly the external join's result
(quantization is conservative, Treecut/proxying loses nothing, filter
pruning keeps every subtree point).  Hypothesis drives deployments and
queries through the full pipeline.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.relations import SensorWorld
from repro.joins.external import ExternalJoin
from repro.joins.runner import run_snapshot
from repro.joins.sensjoin import SensJoin, SensJoinConfig
from repro.query.parser import parse_query
from repro.sim.network import DeploymentConfig, deploy_uniform

CONDITIONS = [
    "A.temp - B.temp > {t}",
    "|A.temp - B.temp| < {t} AND distance(A.x, A.y, B.x, B.y) > 150",
    "A.temp - B.temp > {t} AND A.hum < 70",
    "A.temp + B.temp > 2 * {t}",
    "A.temp - B.temp > {t} OR B.light - A.light > 400",
]


@st.composite
def scenario_params(draw):
    seed = draw(st.integers(min_value=0, max_value=30))
    condition = draw(st.sampled_from(CONDITIONS))
    threshold = draw(
        st.floats(min_value=0.1, max_value=4.0).map(lambda x: round(x, 2))
    )
    dmax = draw(st.sampled_from([0, 10, 30, 45]))
    limit = draw(st.sampled_from([0, 120, 500]))
    return seed, condition, threshold, dmax, limit


@settings(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(scenario_params())
def test_sens_join_always_exact(params):
    seed, condition, threshold, dmax, limit = params
    config = DeploymentConfig(node_count=90, area_side_m=257.0, seed=seed)
    network = deploy_uniform(config)
    world = SensorWorld.homogeneous(network, seed=seed, area_side_m=257.0)
    sql = (
        "SELECT A.hum, B.hum FROM sensors A, sensors B WHERE "
        + condition.format(t=threshold)
        + " ONCE"
    )
    query = parse_query(sql)
    external = run_snapshot(network, world, query, ExternalJoin(), tree_seed=seed)
    sens = run_snapshot(
        network,
        world,
        query,
        SensJoin(SensJoinConfig(dmax_bytes=dmax, subtree_limit_bytes=limit)),
        tree_seed=seed,
    )
    assert external.result.signature() == sens.result.signature()


def test_accounting_consistency(small_network, small_world, tail_query):
    """Invariant 7: per-node counters sum to the totals."""
    outcome = run_snapshot(small_network, small_world, tail_query(1.5), tree_seed=11)
    stats = outcome.stats
    per_node_total = sum(
        stats.node_tx_packets(node_id) for node_id in small_network.node_ids
    )
    assert per_node_total == stats.total_tx_packets()
    per_phase_total = sum(stats.tx_packets_by_phase().values())
    assert per_phase_total == stats.total_tx_packets()


def test_energy_consistent_with_packets(small_network, small_world, tail_query):
    """Every counted packet must have been charged to a ledger."""
    outcome = run_snapshot(small_network, small_world, tail_query(1.5), tree_seed=11)
    ledger_packets = sum(
        small_network.nodes[n].ledger.tx_packets for n in small_network.node_ids
    )
    assert ledger_packets == outcome.stats.total_tx_packets()
    energy = sum(
        small_network.nodes[n].ledger.total_energy for n in small_network.node_ids
    )
    assert energy > 0


def test_snapshot_isolation_between_algorithms(small_network, small_world, tail_query):
    """Both algorithms must see the same snapshot for fair comparison."""
    query = tail_query(1.5)
    a = run_snapshot(small_network, small_world, query, "external-join", tree_seed=11)
    b = run_snapshot(small_network, small_world, query, "external-join", tree_seed=11)
    assert a.result.signature() == b.result.signature()
    assert a.total_transmissions == b.total_transmissions
