"""Join-location analysis tests (§IV-E)."""

import pytest

from repro.errors import NetworkError
from repro.joins.placement import analyze_join_location, hop_distances
from repro.sim.network import DeploymentConfig, deploy_uniform
from repro.sim.node import BASE_STATION_ID


def test_hop_distances_match_tree_depths(small_network, small_tree):
    hops = hop_distances(small_network, BASE_STATION_ID)
    for node_id in small_network.sensor_node_ids:
        assert hops[node_id] == small_tree.depth(node_id)


def test_hop_distances_unknown_source(small_network):
    with pytest.raises(NetworkError):
        hop_distances(small_network, 99999)


def test_base_station_optimal_when_result_large(small_network):
    """§IV-E: after filtering, the result exceeds the input — the base
    station wins because it never ships the result anywhere."""
    contributors = small_network.sensor_node_ids[:20]
    report = analyze_join_location(
        small_network,
        contributors,
        tuple_bytes=10,
        result_rows=200,        # result much larger than the 20 inputs
        result_row_bytes=8,
    )
    assert report.base_station_is_optimal
    assert report.base_station.result_byte_hops == 0.0


def test_mediator_can_win_with_tiny_result_far_regions(small_network):
    """The related-work regime: clustered inputs far from the base station
    and a tiny result favour an in-network location."""
    # Contributors: the nodes farthest from the base station.
    hops = hop_distances(small_network, BASE_STATION_ID)
    far = sorted(small_network.sensor_node_ids, key=lambda n: -hops[n])[:15]
    report = analyze_join_location(
        small_network,
        far,
        tuple_bytes=10,
        result_rows=1,          # nearly empty result
        result_row_bytes=4,
    )
    assert not report.base_station_is_optimal
    assert report.advantage > 1.0


def test_candidate_costs_are_decomposed(small_network):
    contributors = small_network.sensor_node_ids[:10]
    report = analyze_join_location(
        small_network, contributors, tuple_bytes=6, result_rows=5, result_row_bytes=4
    )
    best = report.best_in_network
    assert best.total == best.input_byte_hops + best.result_byte_hops
    assert report.candidates_evaluated > 0


def test_explicit_candidates_respected(small_network):
    contributors = small_network.sensor_node_ids[:10]
    candidate = contributors[0]
    report = analyze_join_location(
        small_network, contributors, tuple_bytes=6, result_rows=0,
        result_row_bytes=4, candidates=[candidate],
    )
    assert report.best_in_network.location == candidate
    assert report.candidates_evaluated == 1


def test_no_contributors_degenerates_gracefully(small_network):
    report = analyze_join_location(
        small_network, [], tuple_bytes=6, result_rows=0, result_row_bytes=4
    )
    assert report.base_station.total == 0.0
