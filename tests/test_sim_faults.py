"""Fault schedule construction, validation, and injection (§IV-F)."""

import pytest

from repro.errors import SimulationError
from repro.sim.faults import (
    LINK_DROP,
    LOSS_BURST,
    NODE_CRASH,
    Fault,
    FaultInjector,
    FaultPlan,
    random_crash_plan,
)
from repro.sim.kernel import Environment
from repro.sim.network import DeploymentConfig, deploy_uniform
from repro.sim.node import BASE_STATION_ID
from repro.sim.trace import FAULT_INJECT, ListTracer


@pytest.fixture()
def network():
    config = DeploymentConfig(node_count=60, area_side_m=210.0, seed=2)
    return deploy_uniform(config)


class TestFaultValidation:
    def test_crash_needs_target(self):
        with pytest.raises(ValueError, match="target"):
            Fault(0.0, NODE_CRASH)

    def test_crash_rejects_base_station(self):
        with pytest.raises(ValueError, match="base station"):
            Fault(0.0, NODE_CRASH, node_a=BASE_STATION_ID)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(0.0, "meteor", node_a=1)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Fault(-1.0, NODE_CRASH, node_a=1)

    def test_link_drop_needs_both_endpoints(self):
        with pytest.raises(ValueError, match="both"):
            Fault(0.0, LINK_DROP, node_a=1)
        with pytest.raises(ValueError):
            Fault(0.0, LINK_DROP, node_b=1)

    def test_link_drop_rejects_self_link(self):
        with pytest.raises(ValueError, match="itself"):
            Fault(0.0, LINK_DROP, node_a=3, node_b=3)

    def test_burst_needs_duration_and_rate(self):
        with pytest.raises(ValueError, match="duration"):
            Fault(0.0, LOSS_BURST, loss_rate=0.5)
        with pytest.raises(ValueError, match="loss_rate"):
            Fault(0.0, LOSS_BURST, duration_s=1.0, loss_rate=0.0)
        with pytest.raises(ValueError):
            Fault(0.0, LOSS_BURST, duration_s=1.0, loss_rate=1.5)


class TestFaultPlan:
    def test_sorted_by_time(self):
        plan = FaultPlan((
            Fault(2.0, NODE_CRASH, node_a=5),
            Fault(0.5, NODE_CRASH, node_a=3),
            Fault(1.0, LINK_DROP, node_a=1, node_b=2),
        ))
        assert [f.time_s for f in plan] == [0.5, 1.0, 2.0]

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.empty()
        assert len(FaultPlan.empty()) == 0
        assert FaultPlan((Fault(0.0, NODE_CRASH, node_a=1),))

    def test_crashed_nodes_in_injection_order(self):
        plan = FaultPlan((
            Fault(2.0, NODE_CRASH, node_a=5),
            Fault(1.0, LINK_DROP, node_a=1, node_b=2),
            Fault(0.5, NODE_CRASH, node_a=3),
        ))
        assert plan.crashed_nodes == (3, 5)


class TestRandomCrashPlan:
    def test_deterministic_for_seed(self):
        ids = list(range(1, 40))
        a = random_crash_plan(ids, 5, horizon_s=2.0, seed=9)
        b = random_crash_plan(ids, 5, horizon_s=2.0, seed=9)
        assert a == b
        c = random_crash_plan(ids, 5, horizon_s=2.0, seed=10)
        assert a != c

    def test_never_targets_base_station(self):
        ids = [BASE_STATION_ID] + list(range(1, 10))
        plan = random_crash_plan(ids, 9, seed=0)
        assert BASE_STATION_ID not in plan.crashed_nodes
        assert len(set(plan.crashed_nodes)) == 9

    def test_times_within_horizon(self):
        plan = random_crash_plan(range(1, 30), 10, horizon_s=0.25, seed=4)
        assert all(0.0 <= f.time_s <= 0.25 for f in plan)

    def test_too_many_crashes_rejected(self):
        with pytest.raises(ValueError, match="cannot crash"):
            random_crash_plan([1, 2, 3], 4)
        with pytest.raises(ValueError):
            random_crash_plan([1, 2, 3], -1)


class TestFaultInjector:
    def test_crash_applied_at_scheduled_time(self, network):
        victim = network.sensor_node_ids[7]
        killed = []
        env = Environment()
        tracer = ListTracer()
        injector = FaultInjector(
            env, network,
            FaultPlan((Fault(1.5, NODE_CRASH, node_a=victim),)),
            tracer=tracer, on_node_crash=killed.append,
        )
        injector.start()
        env.run()
        assert env.now == 1.5
        assert not network.nodes[victim].alive
        assert killed == [victim]
        events = tracer.filter(kind=FAULT_INJECT)
        assert len(events) == 1
        assert events[0].node_id == victim
        assert events[0].detail["fault"] == NODE_CRASH

    def test_crash_on_dead_node_is_noop(self, network):
        victim = network.sensor_node_ids[7]
        network.fail_node(victim)
        env = Environment()
        killed = []
        injector = FaultInjector(
            env, network,
            FaultPlan((Fault(0.5, NODE_CRASH, node_a=victim),)),
            on_node_crash=killed.append,
        )
        injector.start()
        env.run()
        # Applied (recorded) but nothing to interrupt: the node was dead.
        assert killed == []
        assert len(injector.applied) == 1

    def test_crash_on_unknown_node_raises(self, network):
        env = Environment()
        injector = FaultInjector(
            env, network, FaultPlan((Fault(0.0, NODE_CRASH, node_a=99999),))
        )
        injector.start()
        with pytest.raises(SimulationError, match="unknown node"):
            env.run()

    def test_link_drop_severs_connectivity(self, network):
        node = network.sensor_node_ids[0]
        neighbour = sorted(network.neighbours(node))[0]
        env = Environment()
        injector = FaultInjector(
            env, network,
            FaultPlan((Fault(0.25, LINK_DROP, node_a=node, node_b=neighbour),)),
        )
        injector.start()
        env.run()
        assert neighbour not in network.neighbours(node)
        assert not network.link_up(node, neighbour)

    def test_burst_swaps_and_restores_loss_probability(self, network):
        channel = network.channel
        assert channel.loss_probability is None
        env = Environment()
        injector = FaultInjector(
            env, network,
            FaultPlan((
                Fault(1.0, LOSS_BURST, duration_s=2.0, loss_rate=0.4),
                Fault(2.0, LOSS_BURST, duration_s=0.5, loss_rate=0.7),
            )),
        )
        injector.start()
        env.run(until=1.5)
        assert channel.loss_probability is not None
        assert channel.loss_probability(1, 2) == 0.4
        env.run(until=2.2)
        # Overlapping bursts: the highest active rate floors every link.
        assert channel.loss_probability(1, 2) == 0.7
        env.run(until=2.8)
        assert channel.loss_probability(1, 2) == 0.4
        env.run()
        # Last burst expired: the original callable (None) is restored.
        assert channel.loss_probability is None
