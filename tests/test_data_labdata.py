"""Synthetic Intel-Lab trace tests."""

import numpy as np

from repro.data.labdata import (
    LAB_HEIGHT_M,
    LAB_MOTE_COUNT,
    LAB_WIDTH_M,
    generate_lab_deployment,
    generate_lab_trace,
)


def test_deployment_shape():
    motes = generate_lab_deployment(seed=0)
    assert len(motes) == LAB_MOTE_COUNT
    assert len({m.mote_id for m in motes}) == LAB_MOTE_COUNT
    for mote in motes:
        assert 0.0 <= mote.x <= LAB_WIDTH_M
        assert 0.0 <= mote.y <= LAB_HEIGHT_M


def test_trace_covers_every_mote_every_epoch():
    motes = generate_lab_deployment(seed=0)
    readings = list(generate_lab_trace(motes, epochs=5, seed=0))
    assert len(readings) == 5 * LAB_MOTE_COUNT
    epochs = {r.epoch for r in readings}
    assert epochs == set(range(5))


def test_trace_values_physically_plausible():
    motes = generate_lab_deployment(seed=0)
    readings = list(generate_lab_trace(motes, epochs=10, seed=0))
    temps = [r.temperature for r in readings]
    hums = [r.humidity for r in readings]
    assert 5.0 < min(temps) and max(temps) < 40.0
    assert 20.0 < min(hums) and max(hums) < 70.0


def test_trace_spatially_correlated():
    """Fig. 4's property: nearby motes report similar temperatures."""
    motes = generate_lab_deployment(seed=0)
    readings = [r for r in generate_lab_trace(motes, epochs=1, seed=0)]
    by_mote = {r.mote_id: r.temperature for r in readings}
    positions = {m.mote_id: (m.x, m.y) for m in motes}

    near_diffs, far_diffs = [], []
    ids = sorted(by_mote)
    for i in ids:
        for j in ids:
            if i >= j:
                continue
            xi, yi = positions[i]
            xj, yj = positions[j]
            distance = np.hypot(xi - xj, yi - yj)
            diff = abs(by_mote[i] - by_mote[j])
            if distance < 5.0:
                near_diffs.append(diff)
            elif distance > 30.0:
                far_diffs.append(diff)
    assert near_diffs and far_diffs
    assert np.mean(near_diffs) < np.mean(far_diffs)


def test_trace_deterministic():
    motes = generate_lab_deployment(seed=1)
    a = [(r.epoch, r.mote_id, r.temperature) for r in generate_lab_trace(motes, 3, seed=2)]
    b = [(r.epoch, r.mote_id, r.temperature) for r in generate_lab_trace(motes, 3, seed=2)]
    assert a == b
