"""Packetization and channel accounting tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.energy import EnergyLedger
from repro.sim.radio import Channel, PacketFormat
from repro.sim.stats import TransmissionStats


def make_channel(max_packet=48, nodes=(1, 2, 3)):
    stats = TransmissionStats()
    ledgers = {node: EnergyLedger() for node in nodes}
    return Channel(PacketFormat(max_packet), stats, ledgers), stats, ledgers


class TestPacketFormat:
    def test_zero_bytes_zero_packets(self):
        assert PacketFormat(48).packets_for(0) == 0

    def test_exact_fit(self):
        assert PacketFormat(48).packets_for(48) == 1

    def test_one_byte_over(self):
        assert PacketFormat(48).packets_for(49) == 2

    def test_paper_sizes(self):
        fmt = PacketFormat(48)
        assert fmt.packets_for(30) == 1  # a D_max payload fits one packet
        assert PacketFormat(124).packets_for(124) == 1

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            PacketFormat(0)
        with pytest.raises(ValueError):
            PacketFormat(48).packets_for(-1)

    def test_bytes_for_packets(self):
        assert PacketFormat(48).bytes_for_packets(3) == 144

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=200))
    def test_packets_cover_payload(self, payload, max_packet):
        fmt = PacketFormat(max_packet)
        packets = fmt.packets_for(payload)
        assert packets * max_packet >= payload
        if packets:
            assert (packets - 1) * max_packet < payload

    @given(st.integers(min_value=0, max_value=5_000), st.integers(min_value=0, max_value=5_000))
    def test_packets_monotone_and_subadditive(self, a, b):
        fmt = PacketFormat(48)
        assert fmt.packets_for(a + b) >= fmt.packets_for(max(a, b))
        # Merging payloads never costs more packets than sending separately:
        assert fmt.packets_for(a + b) <= fmt.packets_for(a) + fmt.packets_for(b) or (
            a == 0 or b == 0
        )


class TestChannel:
    def test_unicast_charges_both_ends(self):
        channel, stats, ledgers = make_channel()
        packets = channel.unicast(1, 2, 100, "phase-x")
        assert packets == 3
        assert ledgers[1].tx_packets == 3 and ledgers[1].tx_bytes == 100
        assert ledgers[2].rx_packets == 3 and ledgers[2].rx_bytes == 100
        assert ledgers[3].tx_packets == ledgers[3].rx_packets == 0
        assert stats.total_tx_packets() == 3
        assert stats.node_tx_packets(1, ["phase-x"]) == 3

    def test_unicast_empty_payload_free(self):
        channel, stats, _ = make_channel()
        assert channel.unicast(1, 2, 0, "phase") == 0
        assert stats.total_tx_packets() == 0
        assert channel.log == []

    def test_broadcast_single_tx_many_rx(self):
        channel, stats, ledgers = make_channel()
        packets = channel.broadcast(1, [2, 3], 50, "flood")
        assert packets == 2
        assert ledgers[1].tx_packets == 2
        assert ledgers[2].rx_packets == 2 and ledgers[3].rx_packets == 2
        assert stats.total_tx_packets() == 2  # broadcast counted once

    def test_unknown_node_rejected(self):
        channel, _, _ = make_channel()
        with pytest.raises(SimulationError):
            channel.unicast(1, 99, 10, "phase")

    def test_latency_proportional_to_packets(self):
        channel, _, _ = make_channel()
        assert channel.latency_for(0) == 0.0
        assert channel.latency_for(49) == pytest.approx(2 * channel.hop_latency_s)

    def test_transmission_log_records_everything(self):
        channel, _, _ = make_channel()
        channel.unicast(1, 2, 10, "a")
        channel.broadcast(2, [1, 3], 20, "b")
        assert [t.phase for t in channel.log] == ["a", "b"]
        assert channel.log[1].receivers == (1, 3)
