"""Packetization and channel accounting tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.energy import EnergyLedger
from repro.sim.radio import ArqConfig, Channel, PacketFormat
from repro.sim.stats import TransmissionStats


def make_channel(max_packet=48, nodes=(1, 2, 3)):
    stats = TransmissionStats()
    ledgers = {node: EnergyLedger() for node in nodes}
    return Channel(PacketFormat(max_packet), stats, ledgers), stats, ledgers


class TestPacketFormat:
    def test_zero_bytes_zero_packets(self):
        assert PacketFormat(48).packets_for(0) == 0

    def test_exact_fit(self):
        assert PacketFormat(48).packets_for(48) == 1

    def test_one_byte_over(self):
        assert PacketFormat(48).packets_for(49) == 2

    def test_paper_sizes(self):
        fmt = PacketFormat(48)
        assert fmt.packets_for(30) == 1  # a D_max payload fits one packet
        assert PacketFormat(124).packets_for(124) == 1

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            PacketFormat(0)
        with pytest.raises(ValueError):
            PacketFormat(48).packets_for(-1)

    def test_bytes_for_packets(self):
        assert PacketFormat(48).bytes_for_packets(3) == 144

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=200))
    def test_packets_cover_payload(self, payload, max_packet):
        fmt = PacketFormat(max_packet)
        packets = fmt.packets_for(payload)
        assert packets * max_packet >= payload
        if packets:
            assert (packets - 1) * max_packet < payload

    @given(st.integers(min_value=0, max_value=5_000), st.integers(min_value=0, max_value=5_000))
    def test_packets_monotone_and_subadditive(self, a, b):
        fmt = PacketFormat(48)
        assert fmt.packets_for(a + b) >= fmt.packets_for(max(a, b))
        # Merging payloads never costs more packets than sending separately:
        assert fmt.packets_for(a + b) <= fmt.packets_for(a) + fmt.packets_for(b) or (
            a == 0 or b == 0
        )


class TestChannel:
    def test_unicast_charges_both_ends(self):
        channel, stats, ledgers = make_channel()
        packets = channel.unicast(1, 2, 100, "phase-x")
        assert packets == 3
        assert ledgers[1].tx_packets == 3 and ledgers[1].tx_bytes == 100
        assert ledgers[2].rx_packets == 3 and ledgers[2].rx_bytes == 100
        assert ledgers[3].tx_packets == ledgers[3].rx_packets == 0
        assert stats.total_tx_packets() == 3
        assert stats.node_tx_packets(1, ["phase-x"]) == 3

    def test_unicast_empty_payload_free(self):
        channel, stats, _ = make_channel()
        assert channel.unicast(1, 2, 0, "phase") == 0
        assert stats.total_tx_packets() == 0
        assert channel.log == []

    def test_broadcast_single_tx_many_rx(self):
        channel, stats, ledgers = make_channel()
        packets = channel.broadcast(1, [2, 3], 50, "flood")
        assert packets == 2
        assert ledgers[1].tx_packets == 2
        assert ledgers[2].rx_packets == 2 and ledgers[3].rx_packets == 2
        assert stats.total_tx_packets() == 2  # broadcast counted once

    def test_unknown_node_rejected(self):
        channel, _, _ = make_channel()
        with pytest.raises(SimulationError):
            channel.unicast(1, 99, 10, "phase")

    def test_latency_proportional_to_packets(self):
        channel, _, _ = make_channel()
        assert channel.latency_for(0) == 0.0
        assert channel.latency_for(49) == pytest.approx(2 * channel.hop_latency_s)

    def test_transmission_log_records_everything(self):
        channel, _, _ = make_channel()
        channel.unicast(1, 2, 10, "a")
        channel.broadcast(2, [1, 3], 20, "b")
        assert [t.phase for t in channel.log] == ["a", "b"]
        assert channel.log[1].receivers == (1, 3)


def make_lossy_channel(p_loss, max_packet=48, nodes=(1, 2, 3), seed=0, arq=None,
                       tracer=None):
    """A channel where every link loses each packet with probability p_loss."""
    stats = TransmissionStats()
    ledgers = {node: EnergyLedger() for node in nodes}
    channel = Channel(
        PacketFormat(max_packet), stats, ledgers,
        loss_probability=lambda a, b: p_loss, arq=arq, arq_seed=seed,
        tracer=tracer,
    )
    return channel, stats, ledgers


class TestEmptyBroadcast:
    def test_no_receivers_is_a_noop(self):
        channel, stats, ledgers = make_channel()
        assert channel.broadcast(1, [], 100, "flood") == 0
        assert ledgers[1].tx_packets == 0
        assert ledgers[1].tx_energy == 0.0
        assert stats.total_tx_packets() == 0
        assert channel.log == []
        assert channel.last_send_latency_s == 0.0

    def test_no_receivers_noop_even_under_loss(self):
        channel, stats, _ = make_lossy_channel(0.5)
        assert channel.broadcast(1, [], 100, "flood") == 0
        assert stats.total_tx_packets() == 0
        assert stats.total_retx_packets() == 0


class TestArqConfig:
    def test_defaults_from_constants(self):
        from repro import constants

        arq = ArqConfig()
        assert arq.max_retries == constants.DEFAULT_ARQ_MAX_RETRIES
        assert arq.ack_timeout_s == constants.DEFAULT_ARQ_ACK_TIMEOUT_S

    def test_validation(self):
        with pytest.raises(ValueError):
            ArqConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ArqConfig(ack_timeout_s=-0.1)
        with pytest.raises(ValueError):
            ArqConfig(backoff_factor=0.5)

    def test_backoff_delay_is_exponential(self):
        arq = ArqConfig(ack_timeout_s=0.01, backoff_factor=2.0)
        assert arq.backoff_delay_s(0) == 0.0
        assert arq.backoff_delay_s(1) == pytest.approx(0.01)
        assert arq.backoff_delay_s(3) == pytest.approx(0.01 + 0.02 + 0.04)


class TestLossyChannel:
    def test_lossless_channel_has_no_retx(self):
        channel, stats, ledgers = make_channel()
        channel.unicast(1, 2, 100, "phase")
        channel.broadcast(1, [2, 3], 100, "phase")
        assert stats.total_retx_packets() == 0
        assert ledgers[1].retx_packets == 0
        assert all(t.retries == 0 for t in channel.log)

    def test_lossless_channel_draws_no_randomness(self):
        channel, _, _ = make_channel()
        before = channel._rng.getstate()
        channel.unicast(1, 2, 100, "phase")
        channel.broadcast(1, [2, 3], 100, "phase")
        assert channel._rng.getstate() == before

    def test_zero_probability_link_still_consumes_draws(self):
        # RNG stream alignment across loss rates requires one draw per
        # packet whenever the loss layer is on, even for perfect links.
        channel, _, _ = make_lossy_channel(0.0)
        before = channel._rng.getstate()
        channel.unicast(1, 2, 100, "phase")  # 3 packets -> 3 draws
        assert channel._rng.getstate() != before

    def test_retx_charged_and_recorded(self):
        channel, stats, ledgers = make_lossy_channel(0.6, seed=1)
        channel.unicast(1, 2, 480, "phase")  # 10 packets at p=0.6
        retx = stats.total_retx_packets()
        assert retx > 0
        assert ledgers[1].retx_packets == retx
        assert ledgers[1].retx_energy > 0
        assert ledgers[2].rx_packets == 10  # receiver charged once per packet
        assert stats.total_tx_packets() == 10  # first transmissions untouched
        assert channel.log[0].retries == retx

    def test_retries_bounded_by_arq_policy(self):
        arq = ArqConfig(max_retries=2)
        channel, stats, _ = make_lossy_channel(0.99, seed=0, arq=arq)
        channel.unicast(1, 2, 48 * 5, "phase")
        assert stats.total_retx_packets() <= 2 * 5

    def test_deterministic_under_seed_and_reset(self):
        channel, stats, _ = make_lossy_channel(0.3, seed=42)
        channel.unicast(1, 2, 480, "phase")
        first = stats.total_retx_packets()
        channel.reset_arq()
        stats2 = TransmissionStats()
        channel.stats = stats2
        channel.unicast(1, 2, 480, "phase")
        assert stats2.total_retx_packets() == first

    def test_retries_monotone_in_loss_rate(self):
        counts = []
        for p_loss in (0.0, 0.05, 0.1, 0.2, 0.4, 0.8):
            channel, stats, _ = make_lossy_channel(p_loss, seed=7)
            for _ in range(20):
                channel.unicast(1, 2, 100, "phase")
            counts.append(stats.total_retx_packets())
        assert counts == sorted(counts)
        assert counts[-1] > 0

    def test_broadcast_repeats_for_worst_listener(self):
        def per_link(a, b):
            return 0.0 if b == 2 else 0.7

        stats = TransmissionStats()
        ledgers = {node: EnergyLedger() for node in (1, 2, 3)}
        channel = Channel(PacketFormat(48), stats, ledgers,
                          loss_probability=per_link, arq_seed=3)
        channel.broadcast(1, [2, 3], 480, "flood")
        assert stats.total_retx_packets() > 0
        # Listeners pay one receive per packet, not per retry.
        assert ledgers[2].rx_packets == 10 and ledgers[3].rx_packets == 10

    def test_last_send_latency_includes_arq_delay(self):
        channel, _, _ = make_lossy_channel(0.8, seed=0)
        packets = channel.unicast(1, 2, 480, "phase")
        serialisation = packets * channel.hop_latency_s
        assert channel.last_send_latency_s > serialisation
        assert channel.total_arq_delay_s == pytest.approx(
            channel.last_send_latency_s - serialisation
        )

    def test_last_send_latency_matches_latency_for_when_lossless(self):
        channel, _, _ = make_channel()
        channel.unicast(1, 2, 100, "phase")
        assert channel.last_send_latency_s == channel.latency_for(100)
        channel.unicast(1, 2, 0, "phase")
        assert channel.last_send_latency_s == 0.0

    def test_tracer_sees_link_retx_events(self):
        from repro.sim.trace import ListTracer

        tracer = ListTracer()
        channel, _, _ = make_lossy_channel(0.7, seed=5, tracer=tracer)
        channel.unicast(1, 2, 480, "phase")
        events = tracer.filter(kind="link-retx")
        assert events
        assert events[0].node_id == 1
        assert events[0].detail["retries"] > 0

    def test_fragment_sizes_cover_payload(self):
        fmt = PacketFormat(48)
        assert fmt.fragment_sizes(0) == []
        assert fmt.fragment_sizes(48) == [48]
        assert fmt.fragment_sizes(100) == [48, 48, 4]
        assert sum(fmt.fragment_sizes(1234)) == 1234

    @given(st.floats(min_value=0.0, max_value=0.95), st.integers(0, 2**32))
    def test_draw_retries_within_bounds(self, p_loss, seed):
        channel, _, _ = make_lossy_channel(p_loss, seed=seed)
        retries = channel._draw_retries(p_loss)
        assert 0 <= retries <= channel.arq.max_retries


class TestDeadLinks:
    """§IV-F: sends over a severed link spend the ARQ budget, deliver nothing."""

    def make_dead_channel(self, dead=(3,), loss=None, seed=5, tracer=None):
        stats = TransmissionStats()
        ledgers = {node: EnergyLedger() for node in (1, 2, 3)}
        kwargs = {"tracer": tracer} if tracer is not None else {}
        channel = Channel(
            PacketFormat(48), stats, ledgers,
            loss_probability=loss, arq_seed=seed,
            link_up=lambda a, b: b not in dead,
            **kwargs,
        )
        return channel, stats, ledgers

    def test_unicast_over_dead_link_charges_sender_only(self):
        channel, stats, ledgers = self.make_dead_channel()
        packets = channel.unicast(1, 3, 480, "phase")
        assert packets == 10
        assert channel.last_send_delivered is False
        # Sender pays the transmission plus the full retry budget…
        assert ledgers[1].tx_packets == 10
        assert stats.total_retx_packets() == channel.arq.max_retries * 10
        # …the receiver hears nothing and pays nothing.
        assert ledgers[3].rx_packets == 0
        assert stats.node_rx_packets(3) == 0
        assert channel.log[-1].delivered is False

    def test_live_link_unaffected(self):
        channel, _, ledgers = self.make_dead_channel()
        channel.unicast(1, 2, 480, "phase")
        assert channel.last_send_delivered is True
        assert ledgers[2].rx_packets == 10
        assert channel.log[-1].delivered is True

    def test_dead_link_consumes_no_arq_draws(self):
        # The failed send's retries are a fixed budget, not sampled — so a
        # dead link must not perturb the seeded draw sequence of later sends.
        flaky = lambda a, b: 0.3
        channel_a, _, _ = self.make_dead_channel(loss=flaky)
        channel_a.unicast(1, 2, 480, "phase")
        clean_retries = channel_a.log[-1].retries
        channel_b, _, _ = self.make_dead_channel(loss=flaky)
        channel_b.unicast(1, 3, 480, "phase")  # dead; no draws
        channel_b.unicast(1, 2, 480, "phase")
        assert channel_b.log[-1].retries == clean_retries

    def test_broadcast_partial_reach(self):
        channel, stats, ledgers = self.make_dead_channel()
        channel.broadcast(1, [2, 3], 480, "phase")
        assert channel.last_broadcast_reached == (2,)
        assert channel.last_send_delivered is False
        assert ledgers[2].rx_packets == 10
        assert ledgers[3].rx_packets == 0
        # The unreachable listener never ACKs: full retry budget.
        assert stats.total_retx_packets() == channel.arq.max_retries * 10

    def test_broadcast_all_reached(self):
        channel, stats, _ = self.make_dead_channel(dead=())
        channel.broadcast(1, [2, 3], 480, "phase")
        assert channel.last_broadcast_reached == (2, 3)
        assert channel.last_send_delivered is True
        assert stats.total_retx_packets() == 0

    def test_dead_link_emits_trace_event(self):
        from repro.sim.trace import LINK_DEAD, ListTracer

        tracer = ListTracer()
        channel, _, _ = self.make_dead_channel(tracer=tracer)
        channel.unicast(1, 3, 480, "phase")
        events = tracer.filter(kind=LINK_DEAD)
        assert len(events) == 1
        assert events[0].node_id == 1
        assert events[0].detail["receiver"] == 3
