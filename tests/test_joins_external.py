"""External-join baseline tests, including hand-computed packet counts."""

import math

import pytest

from repro.data.relations import SensorWorld
from repro.joins.base import ExecutionContext, TupleFormat, node_tuple
from repro.joins.external import EXTERNAL_PHASE, ExternalJoin
from repro.joins.runner import run_snapshot
from repro.query.evaluate import Row, evaluate_join
from repro.query.parser import parse_query
from repro.routing.ctp import build_tree


def run_external(network, world, query, tree=None):
    return run_snapshot(network, world, query, ExternalJoin(), tree=tree, tree_seed=11)


def test_result_matches_direct_evaluation(small_network, small_world, tail_query):
    query = tail_query(1.0)
    outcome = run_external(small_network, small_world, query)
    fmt = TupleFormat(query, small_world)
    rows = []
    for node_id in small_network.sensor_node_ids:
        record, flags = node_tuple(fmt, node_id)
        if record:
            rows.append(Row(node_id, dict(record.values)))
    direct = evaluate_join(query, {"A": rows, "B": rows}, apply_selections=False)
    assert outcome.result.signature() == direct.signature()


def test_packet_count_matches_hand_computation(small_network, small_world, small_tree, tail_query):
    """Per hop: ceil(subtree bytes / 48), every node ships its tuple."""
    query = tail_query(1.0)  # 4-byte tuples: hum + temp
    outcome = run_external(small_network, small_world, query, tree=small_tree)
    fmt = TupleFormat(query, small_world)
    assert fmt.full_tuple_bytes == 4
    counts = small_tree.descendant_counts()
    expected = 0
    for node_id in small_network.sensor_node_ids:
        subtree_tuples = counts[node_id] + 1
        expected += math.ceil(subtree_tuples * 4 / 48)
    assert outcome.total_transmissions == expected


def test_every_transmission_in_external_phase(small_network, small_world, tail_query):
    outcome = run_external(small_network, small_world, tail_query(2.0))
    assert set(outcome.per_phase_transmissions()) == {EXTERNAL_PHASE}


def test_selection_prunes_at_source(small_network, small_world):
    loose = parse_query(
        "SELECT A.hum FROM sensors A, sensors B WHERE A.temp - B.temp > 1 ONCE"
    )
    tight = parse_query(
        "SELECT A.hum FROM sensors A, sensors B "
        "WHERE A.temp > 9999 AND B.temp > 9999 AND A.temp - B.temp > 1 ONCE"
    )
    cost_loose = run_external(small_network, small_world, loose).total_transmissions
    cost_tight = run_external(small_network, small_world, tight).total_transmissions
    assert cost_tight == 0  # nobody passes the selections, nothing is sent
    assert cost_loose > 0


def test_projection_reduces_cost(small_network, small_world):
    narrow = parse_query(
        "SELECT A.hum FROM sensors A, sensors B WHERE A.temp - B.temp > 2 ONCE"
    )
    wide = parse_query(
        "SELECT A.hum, A.pres, A.light, B.hum, B.pres, B.light "
        "FROM sensors A, sensors B WHERE A.temp - B.temp > 2 ONCE"
    )
    cost_narrow = run_external(small_network, small_world, narrow).total_transmissions
    cost_wide = run_external(small_network, small_world, wide).total_transmissions
    assert cost_narrow < cost_wide


def test_heterogeneous_relations(small_network):
    world = SensorWorld.two_relations(small_network, split=0.5, seed=3)
    query = parse_query(
        "SELECT A.hum, B.hum FROM rel_a A, rel_b B WHERE A.temp - B.temp > 0.5 ONCE"
    )
    outcome = run_snapshot(small_network, world, query, ExternalJoin(), tree_seed=11)
    # Every combination pairs an A-member with a B-member.
    for a_node, b_node in outcome.result.combinations:
        assert a_node in world.members("rel_a")
        assert b_node in world.members("rel_b")


def test_response_time_positive_and_bounded(small_network, small_world, small_tree, tail_query):
    outcome = run_external(small_network, small_world, tail_query(2.0), tree=small_tree)
    assert outcome.response_time_s > 0
    # Sanity bound: no more than height x worst per-hop latency x packets.
    assert outcome.response_time_s < 60.0


def test_details_report_shipping_volume(small_network, small_world, tail_query):
    outcome = run_external(small_network, small_world, tail_query(2.0))
    assert outcome.details["tuples_shipped"] == len(small_network.sensor_node_ids)
    assert outcome.details["bytes_shipped"] == outcome.details["tuples_shipped"] * 4
