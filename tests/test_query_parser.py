"""Parser tests: the paper's queries, round-trips, and error cases."""

import pytest

from repro.data.sensors import standard_catalog
from repro.errors import BindingError, ParseError, QueryError, ReproError
from repro.query.expressions import Abs, And, Compare, Distance
from repro.query.parser import parse_query, tokenize
from repro.query.query import Once, SamplePeriod


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a.b, 1.5 FROM x")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "ident", "op", "ident", "op", "number", "keyword", "ident", "eof"]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From")
        assert tokens[0].text == "SELECT" and tokens[1].text == "FROM"

    def test_scientific_notation(self):
        tokens = tokenize("1.5e-3 2E+6 7e2")
        assert [t.text for t in tokens[:-1]] == ["1.5e-3", "2E+6", "7e2"]

    def test_junk_character_rejected(self):
        with pytest.raises(ParseError) as exc:
            tokenize("SELECT #")
        assert exc.value.position == 7


class TestPaperQueries:
    def test_q1_parses(self):
        query = parse_query(
            "SELECT MIN(distance(A.x, A.y, B.x, B.y)) "
            "FROM Sensors A, Sensors B WHERE A.temp - B.temp > 10.0 ONCE"
        )
        assert query.is_aggregate
        assert query.is_self_join
        assert query.aliases == ["A", "B"]
        assert query.join_attributes("A") == ["temp"]
        assert query.full_tuple_attributes("A") == ["temp", "x", "y"]
        assert query.join_attribute_ratio("A") == pytest.approx(1 / 3)
        assert isinstance(query.mode, Once)

    def test_q2_parses(self):
        query = parse_query(
            "SELECT |A.hum - B.hum|, |A.pres - B.pres| "
            "FROM Sensors A, Sensors B "
            "WHERE |A.temp - B.temp| < 0.3 "
            "AND distance(A.x, A.y, B.x, B.y) > 100 ONCE"
        )
        assert not query.is_aggregate
        assert query.join_attributes("A") == ["temp", "x", "y"]
        assert query.full_tuple_attributes("A") == ["hum", "pres", "temp", "x", "y"]
        assert query.join_attribute_ratio("A") == pytest.approx(0.6)
        conjuncts = query.join_predicates
        assert len(conjuncts) == 2
        assert isinstance(conjuncts[0], Compare)
        assert isinstance(conjuncts[0].left, Abs)
        assert isinstance(conjuncts[1].left, Distance)

    def test_sample_period(self):
        query = parse_query("SELECT A.temp FROM s A, s B WHERE A.temp > B.temp SAMPLE PERIOD 30")
        assert isinstance(query.mode, SamplePeriod)
        assert query.mode.seconds == 30.0


class TestRoundTrip:
    QUERIES = [
        "SELECT A.temp FROM s A, s B WHERE A.temp > B.temp ONCE",
        "SELECT MIN(A.temp) FROM s A, s B WHERE A.temp - B.temp > 1 ONCE",
        "SELECT COUNT(*) FROM s A, s B WHERE A.temp = B.temp ONCE",
        "SELECT A.x AS pos FROM s A, s B WHERE A.x * 2 < B.y + 1 ONCE",
        "SELECT A.temp FROM s A, s B WHERE NOT (A.temp < B.temp) ONCE",
        "SELECT A.temp FROM s A, s B WHERE A.temp < 1 OR B.temp > 2 AND A.x = B.x ONCE",
        "SELECT A.temp FROM s A, s B WHERE ABS(A.temp - B.temp) < 1 SAMPLE PERIOD 2.5",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_parse_render_parse_fixed_point(self, sql):
        once = parse_query(sql)
        twice = parse_query(once.sql())
        assert once.sql() == twice.sql()


class TestSelectList:
    def test_star_requires_catalog(self):
        with pytest.raises(ParseError, match="catalogue"):
            parse_query("SELECT * FROM sensors ONCE")

    def test_star_expands_against_catalog(self):
        catalog = standard_catalog()
        query = parse_query("SELECT * FROM sensors ONCE", catalog=catalog)
        assert len(query.select) == len(catalog)

    def test_alias_labels(self):
        query = parse_query("SELECT A.temp AS t FROM s A, s B WHERE A.temp > B.temp ONCE")
        assert query.select[0].name == "t"

    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM s A, s B WHERE A.x = B.x ONCE")
        assert query.is_aggregate


class TestBareColumns:
    def test_bare_column_single_relation(self):
        query = parse_query("SELECT temp FROM sensors WHERE temp > 20 ONCE")
        assert query.select[0].payload.columns() == {("sensors", "temp")}

    def test_bare_column_two_relations_rejected(self):
        with pytest.raises(ParseError, match="ambiguous"):
            parse_query("SELECT temp FROM s A, s B WHERE A.temp > B.temp ONCE")


class TestPredicateParsing:
    def test_operator_precedence_and_over_or(self):
        query = parse_query(
            "SELECT A.temp FROM s A, s B "
            "WHERE A.temp < 1 OR A.temp > 5 AND B.temp < 2 ONCE"
        )
        from repro.query.expressions import Or

        assert isinstance(query.where, Or)
        assert len(query.where.parts) == 2

    def test_grouped_predicate_after_not(self):
        query = parse_query(
            "SELECT A.temp FROM s A, s B WHERE NOT (A.temp < B.temp AND A.x > 1) ONCE"
        )
        from repro.query.expressions import Not

        assert isinstance(query.where, Not)

    def test_parenthesised_arithmetic_in_comparison(self):
        # '(' here opens arithmetic, not a predicate group — needs backtracking.
        query = parse_query(
            "SELECT A.temp FROM s A, s B WHERE (A.temp - B.temp) * 2 > 1 ONCE"
        )
        assert len(query.join_predicates) == 1

    def test_nested_parens_mixed(self):
        query = parse_query(
            "SELECT A.temp FROM s A, s B "
            "WHERE ((A.temp) < (B.temp + 1)) AND (A.x = B.x OR A.y = B.y) ONCE"
        )
        assert len(query.conjuncts) == 2

    def test_unary_minus(self):
        query = parse_query("SELECT A.temp FROM s A, s B WHERE A.temp > -5.5 ONCE")
        assert query.where.evaluate({("A", "temp"): 0.0})

    def test_abs_bars(self):
        query = parse_query("SELECT A.temp FROM s A, s B WHERE |A.temp - B.temp| < 1 ONCE")
        assert isinstance(query.where.left, Abs)


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(ParseError, match="FROM"):
            parse_query("SELECT 1 ONCE")

    def test_missing_mode(self):
        with pytest.raises(ParseError, match="ONCE or SAMPLE"):
            parse_query("SELECT A.temp FROM s A")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query("SELECT A.temp FROM s A ONCE banana")

    def test_unknown_function(self):
        with pytest.raises(ParseError, match="unknown function"):
            parse_query("SELECT sqrt(A.temp) FROM s A ONCE")

    def test_distance_arity(self):
        with pytest.raises(ParseError, match="4 arguments"):
            parse_query("SELECT distance(A.x, A.y) FROM s A ONCE")

    def test_unknown_alias_in_where(self):
        with pytest.raises(BindingError):
            parse_query("SELECT A.temp FROM s A, s B WHERE C.temp > 1 ONCE")

    def test_unknown_attribute_with_catalog(self):
        with pytest.raises(BindingError):
            parse_query(
                "SELECT A.wind FROM sensors A, sensors B WHERE A.temp > B.temp ONCE",
                catalog=standard_catalog(),
            )

    def test_negative_sample_period(self):
        with pytest.raises(Exception):
            parse_query("SELECT A.temp FROM s A SAMPLE PERIOD 0")

    def test_unclosed_abs_bars(self):
        with pytest.raises(ParseError):
            parse_query("SELECT |A.temp FROM s A ONCE")


class TestTypedErrors:
    """Every rejection path raises a typed repro.errors exception.

    ``QueryError`` deliberately does *not* subclass ``ValueError``: callers
    that catch query-validation problems must name them, and a bare
    ``ValueError`` escaping the query layer is a bug.
    """

    def test_query_errors_are_typed_not_bare(self):
        assert issubclass(ParseError, QueryError)
        assert issubclass(BindingError, QueryError)
        assert issubclass(QueryError, ReproError)
        assert not issubclass(QueryError, ValueError)

    @pytest.mark.parametrize(
        "sql",
        [
            # malformed predicates
            "SELECT A.temp FROM s A, s B WHERE A.temp > ONCE",
            "SELECT A.temp FROM s A, s B WHERE A.temp >> B.temp ONCE",
            "SELECT A.temp FROM s A, s B WHERE AND A.temp > 1 ONCE",
            "SELECT A.temp FROM s A, s B WHERE A.temp > 1 AND ONCE",
            "SELECT A.temp FROM s A, s B WHERE (A.temp > 1 ONCE",
            "SELECT A.temp FROM s A, s B WHERE NOT ONCE",
            # malformed SELECT / FROM lists
            "SELECT FROM s A ONCE",
            "SELECT A.temp, FROM s A ONCE",
            "SELECT A.temp FROM ONCE",
            "SELECT A.temp FROM s A, ONCE",
        ],
    )
    def test_malformed_query_raises_parse_error(self, sql):
        with pytest.raises(ParseError):
            parse_query(sql)

    def test_parse_error_carries_position(self):
        with pytest.raises(ParseError) as exc:
            tokenize("SELECT ?")
        assert exc.value.position == 7

    def test_duplicate_from_aliases_rejected(self):
        with pytest.raises(QueryError, match="duplicate alias"):
            parse_query("SELECT A.temp FROM s A, s A WHERE A.temp > 1 ONCE")

    def test_duplicate_select_output_names_rejected(self):
        with pytest.raises(QueryError, match="duplicate SELECT output name"):
            parse_query("SELECT A.temp, A.temp FROM s A, s B WHERE A.temp > B.temp ONCE")

    def test_duplicate_select_labels_rejected(self):
        with pytest.raises(QueryError, match="duplicate SELECT output name"):
            parse_query(
                "SELECT A.temp AS v, B.temp AS v FROM s A, s B WHERE A.temp > B.temp ONCE"
            )

    def test_distinct_labels_resolve_collision(self):
        query = parse_query(
            "SELECT A.temp AS a_t, B.temp AS b_t FROM s A, s B WHERE A.temp > B.temp ONCE"
        )
        assert [item.name for item in query.select] == ["a_t", "b_t"]

    def test_mixed_aggregate_and_plain_rejected(self):
        with pytest.raises(QueryError, match="GROUP BY"):
            parse_query(
                "SELECT MIN(A.temp), B.temp FROM s A, s B WHERE A.temp > B.temp ONCE"
            )

    def test_unknown_attribute_is_binding_error_not_value_error(self):
        with pytest.raises(BindingError):
            parse_query(
                "SELECT A.temp FROM sensors A, sensors B WHERE A.salinity > B.temp ONCE",
                catalog=standard_catalog(),
            )


class TestRandomRoundTrip:
    """Property: any AST the dialect can express survives render -> parse."""

    import hypothesis.strategies as _st
    from hypothesis import given as _given, settings as _settings

    @staticmethod
    def _exprs(depth=0):
        import hypothesis.strategies as st

        from repro.query.expressions import (
            Abs, Add, Column, Distance, Literal, Mul, Neg, Sub,
        )

        leaf = st.one_of(
            st.sampled_from(["temp", "hum", "x", "y"]).flatmap(
                lambda attr: st.sampled_from(["A", "B"]).map(
                    lambda alias: Column(alias, attr)
                )
            ),
            st.floats(min_value=-99, max_value=99, allow_nan=False).map(
                lambda v: Literal(round(v, 3))
            ),
        )
        if depth >= 2:
            return leaf
        sub = TestRandomRoundTrip._exprs(depth + 1)
        return st.one_of(
            leaf,
            st.tuples(sub, sub).map(lambda ab: Add(*ab)),
            st.tuples(sub, sub).map(lambda ab: Sub(*ab)),
            st.tuples(sub, sub).map(lambda ab: Mul(*ab)),
            sub.map(Neg),
            sub.map(Abs),
            st.tuples(sub, sub, sub, sub).map(lambda parts: Distance(*parts)),
        )

    @staticmethod
    def _predicates():
        import hypothesis.strategies as st

        from repro.query.expressions import And, Compare, Not, Or

        comparison = st.tuples(
            st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
            TestRandomRoundTrip._exprs(),
            TestRandomRoundTrip._exprs(),
        ).map(lambda parts: Compare(*parts))
        return st.one_of(
            comparison,
            st.tuples(comparison, comparison).map(lambda ab: And(*ab)),
            st.tuples(comparison, comparison).map(lambda ab: Or(*ab)),
            comparison.map(Not),
        )

    @_given(_st.data())
    @_settings(max_examples=120, deadline=None)
    def test_predicate_round_trip(self, data):
        from repro.query.expressions import Column
        from repro.query.query import JoinQuery, SelectItem

        predicate = data.draw(self._predicates())
        query = JoinQuery(
            [SelectItem(Column("A", "temp"))],
            [("s", "A"), ("s", "B")],
            predicate,
        )
        reparsed = parse_query(query.sql())
        # Negative literals re-render as unary minus, so the fixed point is
        # reached after one render->parse iteration, not necessarily zero.
        assert parse_query(reparsed.sql()).sql() == reparsed.sql()
        # The reparsed predicate must agree pointwise, not only textually.
        env = {
            ("A", name): 1.5 for name in ("temp", "hum", "x", "y")
        }
        env.update({("B", name): -2.25 for name in ("temp", "hum", "x", "y")})
        assert reparsed.where.evaluate(env) == predicate.evaluate(env)
