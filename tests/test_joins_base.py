"""TupleFormat and node-tuple construction tests."""

import pytest

from repro.data.relations import SensorWorld
from repro.errors import ProtocolError, QueryError
from repro.joins.base import ExecutionContext, TupleFormat, node_tuple
from repro.query.parser import parse_query


@pytest.fixture()
def fmt(small_world, q2_style):
    return TupleFormat(q2_style, small_world)


def test_attribute_sets_for_q2(fmt):
    assert fmt.join_attributes == ["temp", "x", "y"]
    assert fmt.full_attributes == ["hum", "pres", "temp", "x", "y"]
    assert fmt.raw_join_tuple_bytes == 6
    assert fmt.full_tuple_bytes == 10
    assert fmt.full_tuples_bytes(3) == 30


def test_alias_flags_msb_first(fmt):
    assert fmt.alias_bit("A") == 0b10
    assert fmt.alias_bit("B") == 0b01
    assert fmt.aliases_of_flags(0b11) == ["A", "B"]
    assert fmt.aliases_of_flags(0b01) == ["B"]


def test_codec_matches_quantizer(fmt):
    assert fmt.codec.flag_bits == 2
    assert fmt.codec.z_bits == fmt.quantizer.total_bits


def test_cross_join_rejected(small_world):
    query = parse_query("SELECT A.temp FROM sensors A, sensors B WHERE A.temp > 1 ONCE")
    with pytest.raises(QueryError):
        TupleFormat(query, small_world)


def test_node_tuple_self_join_both_flags(small_world, q2_style):
    fmt = TupleFormat(q2_style, small_world)
    node_id = small_world.network.sensor_node_ids[0]
    record, flags = node_tuple(fmt, node_id)
    assert record is not None
    assert flags == 0b11  # homogeneous self-join: both roles
    assert set(record.values) == set(fmt.full_attributes)
    assert record.node_id == node_id


def test_node_tuple_base_station_is_none(small_world, q2_style):
    fmt = TupleFormat(q2_style, small_world)
    record, flags = node_tuple(fmt, 0)
    assert record is None and flags == 0


def test_node_tuple_respects_selection_predicates(small_world):
    query = parse_query(
        "SELECT A.hum FROM sensors A, sensors B "
        "WHERE A.temp > 9999 AND A.temp - B.temp > 1 ONCE"
    )
    fmt = TupleFormat(query, small_world)
    node_id = small_world.network.sensor_node_ids[0]
    record, flags = node_tuple(fmt, node_id)
    # The node fails A's selection but still serves role B.
    assert flags == 0b01
    assert record is not None


def test_node_tuple_fails_all_selections(small_world):
    query = parse_query(
        "SELECT A.hum FROM sensors A, sensors B "
        "WHERE A.temp > 9999 AND B.temp > 9999 AND A.temp - B.temp > 1 ONCE"
    )
    fmt = TupleFormat(query, small_world)
    record, flags = node_tuple(fmt, small_world.network.sensor_node_ids[0])
    assert record is None and flags == 0


def test_node_tuple_respects_relation_membership(small_network):
    world = SensorWorld.two_relations(small_network, split=0.5, seed=3)
    world.take_snapshot(0.0)
    query = parse_query(
        "SELECT A.hum, B.hum FROM rel_a A, rel_b B WHERE A.temp - B.temp > 1 ONCE"
    )
    fmt = TupleFormat(query, world)
    for node_id in small_network.sensor_node_ids:
        record, flags = node_tuple(fmt, node_id)
        in_a = node_id in world.members("rel_a")
        expected = 0b10 if in_a else 0b01
        assert flags == expected
        assert record is not None


def test_node_tuple_without_snapshot_raises(small_network, q2_style):
    world = SensorWorld.homogeneous(small_network, seed=1)
    fmt = TupleFormat(q2_style, world)
    with pytest.raises(ProtocolError, match="snapshot"):
        node_tuple(fmt, small_network.sensor_node_ids[0])


def test_encoded_points_bytes_matches_codec(fmt):
    points = [(3, 0), (3, 5), (1, 99)]
    expected = (fmt.codec.encoded_size_bits(points) + 7) // 8
    assert fmt.encoded_points_bytes(points) == expected


def test_execution_context_tuple_format(small_network, small_world, small_tree, q2_style):
    context = ExecutionContext(small_network, small_tree, small_world, q2_style)
    fmt = context.tuple_format()
    assert fmt.full_tuple_bytes == 10
