"""Transmission statistics collector tests."""

import pytest

from repro.sim.stats import NodeLoad, TransmissionStats


def test_totals_across_phases():
    stats = TransmissionStats()
    stats.record_tx(1, "collect", 3, 100)
    stats.record_tx(2, "collect", 2, 60)
    stats.record_tx(1, "filter", 1, 20)
    assert stats.total_tx_packets() == 6
    assert stats.total_tx_packets(["collect"]) == 5
    assert stats.total_tx_bytes(["filter"]) == 20
    assert stats.total_tx_bytes() == 180


def test_per_phase_breakdown():
    stats = TransmissionStats()
    stats.record_tx(1, "a", 1, 10)
    stats.record_tx(2, "a", 2, 20)
    stats.record_tx(2, "b", 4, 40)
    assert stats.tx_packets_by_phase() == {"a": 3, "b": 4}


def test_node_level_queries():
    stats = TransmissionStats()
    stats.record_tx(7, "a", 2, 10)
    stats.record_tx(7, "b", 3, 10)
    stats.record_rx(7, "a", 1, 5)
    assert stats.node_tx_packets(7) == 5
    assert stats.node_tx_packets(7, ["a"]) == 2
    assert stats.node_rx_packets(7) == 1
    assert stats.node_tx_packets(99) == 0


def test_max_node_tx():
    stats = TransmissionStats()
    stats.record_tx(1, "a", 2, 10)
    stats.record_tx(2, "a", 9, 10)
    assert stats.max_node_tx_packets() == 9
    assert stats.max_node_tx_packets(["missing-phase"]) == 0


def test_per_node_loads_join_with_descendants():
    stats = TransmissionStats()
    stats.record_tx(1, "a", 2, 12)
    stats.record_rx(2, "a", 1, 6)
    loads = stats.per_node_loads({1: 10, 2: 0, 3: 5})
    by_id = {load.node_id: load for load in loads}
    assert by_id[1].descendants == 10 and by_id[1].tx_packets == 2
    assert by_id[2].rx_packets == 1
    assert by_id[3].tx_packets == 0  # present via descendants only
    assert by_id[1].total_packets == 2


def test_negative_counts_rejected():
    stats = TransmissionStats()
    with pytest.raises(ValueError):
        stats.record_tx(1, "a", -1, 0)
    with pytest.raises(ValueError):
        stats.record_rx(1, "a", 0, -1)


def test_merge_adds_counters():
    a = TransmissionStats()
    b = TransmissionStats()
    a.record_tx(1, "x", 1, 10)
    b.record_tx(1, "x", 2, 20)
    b.record_tx(2, "y", 3, 30)
    b.record_rx(2, "y", 1, 5)
    a.merge(b)
    assert a.node_tx_packets(1) == 3
    assert a.node_tx_packets(2) == 3
    assert a.node_rx_packets(2) == 1
    assert a.total_tx_bytes() == 60


def test_per_node_loads_sum_matches_totals():
    stats = TransmissionStats()
    for node, packets in ((1, 4), (2, 5), (3, 6)):
        stats.record_tx(node, "p", packets, packets * 10)
    loads = stats.per_node_loads({})
    assert sum(load.tx_packets for load in loads) == stats.total_tx_packets()


def test_retx_dimension_separate_from_tx():
    stats = TransmissionStats()
    stats.record_tx(1, "collection", 5, 100)
    stats.record_retx(1, "collection", 2, 40)
    stats.record_retx(2, "final", 3, 60)
    assert stats.total_tx_packets() == 5  # first transmissions untouched
    assert stats.total_retx_packets() == 5
    assert stats.total_retx_packets(["collection"]) == 2
    assert stats.retx_packets_by_phase() == {"collection": 2, "final": 3}
    assert stats.node_retx_packets(1) == 2
    assert stats.node_retx_packets(99) == 0


def test_record_retx_rejects_negative():
    stats = TransmissionStats()
    with pytest.raises(ValueError):
        stats.record_retx(1, "p", -1, 0)


def test_merge_adds_retx_counters():
    a = TransmissionStats()
    b = TransmissionStats()
    a.record_retx(1, "x", 1, 10)
    b.record_retx(1, "x", 2, 20)
    a.merge(b)
    assert a.total_retx_packets() == 3


def test_per_node_loads_include_retx():
    stats = TransmissionStats()
    stats.record_tx(1, "p", 4, 40)
    stats.record_retx(1, "p", 2, 20)
    stats.record_retx(7, "p", 1, 10)  # a node with only retransmissions
    loads = {load.node_id: load for load in stats.per_node_loads({})}
    assert loads[1].retx_packets == 2
    assert loads[1].total_packets == 4  # retx excluded from the paper metric
    assert loads[7].retx_packets == 1
