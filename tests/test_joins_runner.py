"""Runner tests: snapshots, continuous queries, §IV-F failure recovery."""

import pytest

from repro.data.relations import SensorWorld
from repro.errors import ExecutionAborted
from repro.joins.runner import (
    NetworkFailure,
    list_engines,
    make_algorithm,
    run_continuous,
    run_snapshot,
    run_with_failures,
    snapshot_engine_names,
)
from repro.query.parser import parse_query
from repro.routing.dissemination import QUERY_DISSEMINATION_PHASE
from repro.sim.network import DeploymentConfig, deploy_uniform


def test_make_algorithm_resolution():
    assert make_algorithm("sens-join").name == "sens-join"
    assert make_algorithm("external-join").name == "external-join"
    instance = make_algorithm("sens-join")
    assert make_algorithm(instance) is instance
    with pytest.raises(ValueError, match="unknown algorithm"):
        make_algorithm("hash-join")


def test_engine_listing_matches_differential_registry():
    """Every engine the differential harness can drive must be listed.

    ``repro.verify.generators.ENGINES`` is the authoritative roster (it is
    what cross-engine fuzzing exercises); the runner's listing — which feeds
    ``python -m repro --help`` — must name exactly the same engines, split
    into snapshot vs stateful kinds.
    """
    from repro.verify.generators import ENGINES

    listing = list_engines()
    assert set(listing) == set(ENGINES)
    assert set(snapshot_engine_names()) == {
        name for name, kind in listing.items() if kind == "snapshot"
    }
    assert {name for name, kind in listing.items() if kind == "stateful"} == {
        "adaptive",
        "incremental",
    }


def test_snapshot_engines_all_constructible():
    # Display names may decorate the registry name (sens-join[des]), so
    # only require that every listed snapshot engine actually constructs.
    for name in snapshot_engine_names():
        algorithm = make_algorithm(name)
        assert callable(algorithm.execute)
        assert algorithm.name


def test_stateful_engine_names_raise_targeted_error():
    for name in ("adaptive", "incremental"):
        with pytest.raises(ValueError, match="stateful continuous executor"):
            make_algorithm(name)
        with pytest.raises(ValueError, match="run_round"):
            make_algorithm(name)


def test_run_snapshot_resets_accounting(small_network, small_world, tail_query):
    first = run_snapshot(small_network, small_world, tail_query(1.5), tree_seed=11)
    second = run_snapshot(small_network, small_world, tail_query(1.5), tree_seed=11)
    assert first.total_transmissions == second.total_transmissions


def test_query_dissemination_phase_separate(small_network, small_world, tail_query):
    outcome = run_snapshot(
        small_network, small_world, tail_query(1.5),
        disseminate_query=True, tree_seed=11,
    )
    phases = outcome.stats.tx_packets_by_phase()
    assert QUERY_DISSEMINATION_PHASE in phases
    # The comparison metric excludes it.
    assert outcome.total_transmissions == sum(
        count for phase, count in phases.items() if phase != QUERY_DISSEMINATION_PHASE
    )


def test_run_continuous_yields_independent_rounds(small_network):
    world = SensorWorld.homogeneous(small_network, seed=11, drift_rate=0.05)
    query = parse_query(
        "SELECT A.hum, B.hum FROM sensors A, sensors B "
        "WHERE A.temp - B.temp > 1.2 SAMPLE PERIOD 60"
    )
    outcomes = run_continuous(small_network, world, query, executions=3, tree_seed=11)
    assert len(outcomes) == 3
    # Drifting fields: the result changes between rounds (almost surely).
    counts = [outcome.result.match_count for outcome in outcomes]
    assert len(set(counts)) > 1 or counts[0] == 0


def test_run_continuous_requires_sample_period(small_network, small_world, tail_query):
    with pytest.raises(ValueError, match="SAMPLE PERIOD"):
        run_continuous(small_network, small_world, tail_query(1.0))


def test_run_continuous_requires_positive_rounds(small_network, small_world):
    query = parse_query(
        "SELECT A.temp FROM sensors A, sensors B WHERE A.temp - B.temp > 1 SAMPLE PERIOD 5"
    )
    with pytest.raises(ValueError):
        run_continuous(small_network, small_world, query, executions=0)


class TestFailureRecovery:
    @pytest.fixture()
    def fresh_network(self):
        config = DeploymentConfig(node_count=150, area_side_m=332.0, seed=21)
        return deploy_uniform(config)

    @pytest.fixture()
    def fresh_world(self, fresh_network):
        return SensorWorld.homogeneous(fresh_network, seed=21, area_side_m=332.0)

    def test_no_failures_zero_retries(self, fresh_network, fresh_world, tail_query):
        outcome = run_with_failures(fresh_network, fresh_world, tail_query(1.0))
        assert outcome.details["retries"] == 0.0

    def test_node_failure_triggers_reexecution(self, fresh_network, fresh_world, tail_query):
        victim = fresh_network.sensor_node_ids[10]
        failures = [NetworkFailure("node", victim, attempt=0)]
        outcome = run_with_failures(
            fresh_network, fresh_world, tail_query(1.0), failures=failures
        )
        assert outcome.details["retries"] == 1.0
        # The dead node contributes nothing.
        assert victim not in outcome.result.all_contributing_nodes()

    def test_link_failure_triggers_reexecution(self, fresh_network, fresh_world, tail_query):
        node = fresh_network.sensor_node_ids[0]
        neighbour = sorted(fresh_network.neighbours(node))[0]
        failures = [NetworkFailure("link", node, neighbour, attempt=0)]
        outcome = run_with_failures(
            fresh_network, fresh_world, tail_query(1.0), failures=failures
        )
        assert outcome.details["retries"] == 1.0

    def test_result_still_exact_after_recovery(self, fresh_network, fresh_world, tail_query):
        victim = fresh_network.sensor_node_ids[5]
        failures = [NetworkFailure("node", victim, attempt=0)]
        query = tail_query(1.0)
        sens = run_with_failures(
            fresh_network, fresh_world, query, "sens-join", failures=failures
        )
        external = run_snapshot(
            fresh_network, fresh_world, query, "external-join",
            snapshot_time=1.0,  # same snapshot time as the retry
        )
        assert sens.result.signature() == external.result.signature()

    def test_failures_exhaust_retries(self, fresh_network, fresh_world, tail_query):
        failures = [
            NetworkFailure("node", fresh_network.sensor_node_ids[i], attempt=i)
            for i in range(3)
        ]
        with pytest.raises(ExecutionAborted):
            run_with_failures(
                fresh_network, fresh_world, tail_query(1.0),
                failures=failures, max_retries=1,
            )

    def test_unknown_failure_kind(self):
        with pytest.raises(ValueError):
            NetworkFailure("meteor", 1).apply(None)

    def test_failures_validated_at_construction(self):
        with pytest.raises(ValueError, match="unknown failure kind"):
            NetworkFailure("meteor", 1)
        # A link failure with the default node_b would silently target
        # nothing; it must be rejected before it ever reaches a network.
        with pytest.raises(ValueError, match="node_b"):
            NetworkFailure("link", 1)
        with pytest.raises(ValueError, match="attempt"):
            NetworkFailure("node", 1, attempt=-1)

    def test_aborted_attempt_cost_is_charged(self, fresh_network, fresh_world, tail_query):
        victim = fresh_network.sensor_node_ids[10]
        failures = [NetworkFailure("node", victim, attempt=0)]
        outcome = run_with_failures(
            fresh_network, fresh_world, tail_query(1.0), failures=failures
        )
        # The aborted attempt ran to completion before the failure voided
        # it, so its full cost appears in the details and in the ledgers.
        assert outcome.details["aborted_tx_packets"] > 0
        assert outcome.details["aborted_energy"] > 0.0
        assert fresh_network.total_energy() >= outcome.details["aborted_energy"]
        assert outcome.stats.total_tx_packets() > outcome.details["aborted_tx_packets"]

    def test_no_failures_no_aborted_cost(self, fresh_network, fresh_world, tail_query):
        outcome = run_with_failures(fresh_network, fresh_world, tail_query(1.0))
        assert outcome.details["aborted_tx_packets"] == 0.0
        assert outcome.details["aborted_energy"] == 0.0
