"""Smoke tests for every experiment function, at a tiny scale.

These assert the *shape* each figure is supposed to show, on a 150-node
deployment so the whole file runs in seconds.  The full-scale numbers live
in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro.bench.experiments import (
    ablation_study,
    compression_table,
    failure_study,
    fig10_overall,
    fig11_per_node,
    fig12_ratio3,
    fig13_ratio1,
    fig14_network_size,
    fig15_step_breakdown,
    fig16_quadtree_influence,
    packet_size_study,
    response_time_study,
)
from repro.bench.reporting import render_table, save_csv

NODES = 150


def test_fig10_savings_decrease_with_fraction():
    series = fig10_overall("33", fractions=(0.05, 0.4, 0.8), node_count=NODES)
    savings = series.column("savings_pct")
    assert savings[0] > savings[-1]
    assert savings[0] > 0  # SENS-Join wins at 5%
    external = series.column("external_tx")
    assert len(set(external)) == 1  # external cost independent of fraction


def test_fig11_most_loaded_node_relieved():
    series = fig11_per_node("33", node_count=NODES)
    last = series.rows[-1]
    assert last[0] == "most-loaded"
    external_max, sens_max = last[2], last[3]
    assert external_max > sens_max


def test_fig12_savings_grow_as_ratio_falls():
    series = fig12_ratio3(node_count=NODES)
    ratios = series.column("ratio_pct")
    savings = series.column("savings_pct")
    assert ratios == sorted(ratios)  # 60, 75, 100
    # Smaller ratio (first row) must save at least as much as 100%.
    assert savings[0] >= savings[-1]


def test_fig13_worst_case_still_saves():
    series = fig13_ratio1(node_count=NODES)
    by_total = dict(zip(series.column("total_attrs"), series.column("savings_pct")))
    # Even at 100% join attributes the quadtree keeps SENS-Join competitive.
    assert by_total[1] > -20.0
    # And more attributes overall -> more savings.
    assert by_total[5] > by_total[1]


def test_fig14_larger_networks_save_more_absolute():
    series = fig14_network_size(node_counts=(100, 200), seed=0)
    saved = series.column("saved_tx")
    assert saved[1] > saved[0]


def test_fig15_collection_constant_final_grows():
    series = fig15_step_breakdown(node_count=NODES, fractions=(0.05, 0.25))
    collection = series.column("collection_tx")
    final = series.column("final_tx")
    assert collection[0] == collection[1]
    assert final[1] > final[0]


def test_fig16_quadtree_halves_collection():
    series = fig16_quadtree_influence(node_count=NODES)
    rows = {row[0]: row for row in series.rows}
    external = rows["external-join"][1]
    no_quad = rows["sens-no-quad"][1]
    quad = rows["sens-join"][1]
    assert no_quad <= external  # join attrs only: <= full tuples
    assert quad <= no_quad  # quadtree helps further (bytes-wise at least)


def test_compression_table_ordering():
    series = compression_table(node_count=NODES)
    by_repr = dict(zip(series.column("representation"), series.column("collection_bytes")))
    assert by_repr["quadtree"] < by_repr["none"]
    assert by_repr["bzip2"] >= by_repr["none"] * 0.9  # bzip2 useless or worse
    # At this tiny scale zlib's stream header can even inflate the per-hop
    # payloads (the paper's point about small data volumes); it must at
    # least stay close to raw and beat bzip2.
    assert by_repr["zlib"] <= by_repr["bzip2"]
    assert by_repr["zlib"] <= by_repr["none"] * 1.15


def test_packet_size_study_reports_both_sizes():
    series = packet_size_study(node_count=NODES)
    assert series.column("packet_bytes") == [48, 124]
    for row in series.as_dicts():
        assert row["sens_max_node"] <= row["external_max_node"]


def test_response_time_within_paper_bound():
    series = response_time_study(node_count=NODES, fractions=(0.05,))
    for row in series.as_dicts():
        # 2.25: the epoch-scheduling model's small-scale overshoot envelope.
        assert row["ratio"] <= 2.25


def test_ablation_default_beats_no_treecut_on_collection():
    series = ablation_study(node_count=NODES)
    rows = {row[0]: dict(zip(series.columns, row)) for row in series.rows}
    assert rows["default(dmax=30)"]["total_tx"] <= rows["no-treecut"]["total_tx"]
    assert rows["default(dmax=30)"]["total_tx"] <= rows["raw-representation"]["total_tx"]


def test_render_and_save(tmp_path):
    series = fig10_overall("33", fractions=(0.05,), node_count=NODES)
    text = render_table(series)
    assert "fig10_33" in text and "savings_pct" in text
    path = save_csv(series, tmp_path)
    assert path.exists()
    content = path.read_text().splitlines()
    assert content[0].startswith("fraction,")
    assert len(content) == 2


def test_series_row_validation():
    from repro.bench.reporting import ExperimentSeries

    series = ExperimentSeries("x", "t", ["a", "b"])
    with pytest.raises(ValueError):
        series.add_row(1)


def test_failure_study_recall_and_retry_accounting():
    series = failure_study(crash_fractions=(0.0, 0.05), node_count=100, seed=0)
    assert series.columns == [
        "crash_fraction", "algorithm", "total_tx", "retries",
        "recall", "aborted_tx", "aborted_energy",
    ]
    assert len(series.rows) == 6  # 2 fractions x 3 recovery models
    clean = [row for row in series.rows if row[0] == 0.0]
    for row in clean:
        assert row[3] == 0  # no faults, no retries
        assert row[4] == 1.0  # full recall
        assert row[5] == 0  # nothing aborted
    faulty = [row for row in series.rows if row[0] == 0.05]
    des_row = next(row for row in faulty if row[1] == "sens-join[des]")
    # Mid-collection crashes force at least one in-flight retry, whose
    # partially spent cost is broken out in the aborted columns.
    assert des_row[3] >= 1
    assert des_row[5] > 0
    assert des_row[6] > 0
    assert all(0.0 <= row[4] <= 1.0 for row in faulty)


def test_failure_study_deterministic():
    a = failure_study(crash_fractions=(0.05,), node_count=100, seed=0)
    b = failure_study(crash_fractions=(0.05,), node_count=100, seed=0)
    assert a.rows == b.rows
