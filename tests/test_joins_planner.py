"""Planner tests: the Fig. 10 regime split as decisions."""

import pytest

from repro.joins.base import TupleFormat
from repro.joins.external import ExternalJoin
from repro.joins.planner import estimate_costs, recommend_algorithm
from repro.joins.runner import run_snapshot
from repro.joins.sensjoin import SensJoin
from repro.query.parser import parse_query


@pytest.fixture()
def fmt(small_world, tail_query):
    return TupleFormat(tail_query(1.0), small_world)


def test_fraction_validated(small_tree, fmt):
    with pytest.raises(ValueError):
        estimate_costs(small_tree, fmt, 1.5, 48)


def test_low_fraction_recommends_sens(small_tree, fmt):
    name, estimate = recommend_algorithm(small_tree, fmt, 0.05, 48)
    assert name == "sens-join"
    assert estimate.predicted_savings > 0


def test_high_fraction_recommends_external(small_tree, fmt):
    name, estimate = recommend_algorithm(small_tree, fmt, 0.95, 48)
    assert name == "external-join"
    assert not estimate.sens_wins


def test_estimate_monotone_in_fraction(small_tree, fmt):
    costs = [estimate_costs(small_tree, fmt, f, 48).sens_tx for f in (0.05, 0.3, 0.8)]
    assert costs == sorted(costs)
    # External is fraction-independent.
    externals = {estimate_costs(small_tree, fmt, f, 48).external_tx for f in (0.05, 0.8)}
    assert len(externals) == 1


def test_external_estimate_is_exact(small_network, small_world, small_tree, tail_query):
    """The external-join estimate is the exact byte-packing cost."""
    query = tail_query(1.0)
    fmt = TupleFormat(query, small_world)
    estimate = estimate_costs(small_tree, fmt, 0.05, 48)
    outcome = run_snapshot(
        small_network, small_world, query, ExternalJoin(), tree=small_tree, tree_seed=11
    )
    assert estimate.external_tx == outcome.total_transmissions


def test_decisions_match_reality_at_extremes(small_network, small_world, small_tree, tail_query):
    """The planner's *choice* must agree with measured costs at both ends."""
    fmt = TupleFormat(tail_query(1.0), small_world)
    for threshold, fraction in ((2.5, 0.05), (0.05, 0.95)):
        query = tail_query(threshold)
        external = run_snapshot(
            small_network, small_world, query, ExternalJoin(), tree=small_tree,
            tree_seed=11,
        )
        sens = run_snapshot(
            small_network, small_world, query, SensJoin(), tree=small_tree,
            tree_seed=11,
        )
        actual_winner = (
            "sens-join"
            if sens.total_transmissions < external.total_transmissions
            else "external-join"
        )
        predicted_winner, _ = recommend_algorithm(small_tree, fmt, fraction, 48)
        assert predicted_winner == actual_winner, (threshold, fraction)
