"""Expression AST tests: the three evaluation modes must agree."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EvaluationError, QueryError
from repro.query.expressions import (
    Abs,
    Add,
    Aggregate,
    And,
    Column,
    Compare,
    Distance,
    Div,
    Literal,
    Mul,
    Neg,
    Not,
    Or,
    Sub,
)
from repro.query.intervals import Interval, TriBool

A_TEMP = Column("A", "temp")
B_TEMP = Column("B", "temp")


def scalar_env(**kwargs):
    return {("A", "temp"): kwargs.get("a", 0.0), ("B", "temp"): kwargs.get("b", 0.0)}


def test_column_evaluation_and_errors():
    assert A_TEMP.evaluate(scalar_env(a=3.5)) == 3.5
    with pytest.raises(EvaluationError):
        A_TEMP.evaluate({})
    assert A_TEMP.columns() == {("A", "temp")}
    assert A_TEMP.sql() == "A.temp"


def test_literal_modes():
    lit = Literal(2.5)
    assert lit.evaluate({}) == 2.5
    assert lit.bounds({}) == Interval.point(2.5)
    lo, hi = lit.bounds_arrays({})
    assert lo == hi == np.asarray(2.5)
    assert Literal(3).sql() == "3"


def test_arithmetic_sql_rendering():
    expr = Add(Mul(A_TEMP, Literal(2)), Neg(B_TEMP))
    assert expr.sql() == "((A.temp * 2) + -(B.temp))"


def test_abs_bounds_array_cases():
    env = {("A", "temp"): (np.array([1.0, -3.0, -2.0]), np.array([2.0, -1.0, 5.0]))}
    lo, hi = Abs(A_TEMP).bounds_arrays(env)
    assert lo.tolist() == [1.0, 1.0, 0.0]
    assert hi.tolist() == [2.0, 3.0, 5.0]


def test_div_by_zero_raises_exact():
    expr = Div(Literal(1), Sub(A_TEMP, A_TEMP))
    with pytest.raises(EvaluationError):
        expr.evaluate(scalar_env(a=5.0))


def test_div_bounds_across_zero_unbounded():
    env = {("A", "temp"): (np.array([-1.0]), np.array([1.0]))}
    lo, hi = Div(Literal(1), A_TEMP).bounds_arrays(env)
    assert lo[0] == -np.inf and hi[0] == np.inf


def test_distance_evaluates_hypot():
    expr = Distance(Column("A", "x"), Column("A", "y"), Column("B", "x"), Column("B", "y"))
    env = {("A", "x"): 0.0, ("A", "y"): 0.0, ("B", "x"): 3.0, ("B", "y"): 4.0}
    assert expr.evaluate(env) == pytest.approx(5.0)
    assert expr.sql() == "distance(A.x, A.y, B.x, B.y)"


def test_compare_all_operators():
    env = scalar_env(a=1.0, b=2.0)
    assert Compare("<", A_TEMP, B_TEMP).evaluate(env)
    assert Compare("<=", A_TEMP, B_TEMP).evaluate(env)
    assert not Compare(">", A_TEMP, B_TEMP).evaluate(env)
    assert not Compare(">=", A_TEMP, B_TEMP).evaluate(env)
    assert not Compare("=", A_TEMP, B_TEMP).evaluate(env)
    assert Compare("!=", A_TEMP, B_TEMP).evaluate(env)
    with pytest.raises(QueryError):
        Compare("~", A_TEMP, B_TEMP)


def test_boolean_connectives():
    t = Compare("<", Literal(1), Literal(2))
    f = Compare(">", Literal(1), Literal(2))
    assert And(t, t).evaluate({})
    assert not And(t, f).evaluate({})
    assert Or(f, t).evaluate({})
    assert Not(f).evaluate({})
    with pytest.raises(QueryError):
        And(t)
    with pytest.raises(QueryError):
        Or(f)


def test_tribool_matches_masks():
    """Scalar interval evaluation and the vectorised masks must agree."""
    predicate = And(
        Compare("<", Sub(A_TEMP, B_TEMP), Literal(1.0)),
        Compare(">", Add(A_TEMP, B_TEMP), Literal(0.0)),
    )
    cases = [
        (Interval(0, 0.5), Interval(0, 0.5)),
        (Interval(5, 6), Interval(0, 1)),
        (Interval(-10, 10), Interval(-10, 10)),
        (Interval.point(1), Interval.point(1)),
    ]
    for A, B in cases:
        scalar = predicate.tribool({("A", "temp"): A, ("B", "temp"): B})
        env = {
            ("A", "temp"): (np.array([A.lo]), np.array([A.hi])),
            ("B", "temp"): (np.array([B.lo]), np.array([B.hi])),
        }
        possible, definite = predicate.masks(env)
        assert possible[0] == scalar.possible
        assert definite[0] == scalar.definite


def test_not_masks_swap_and_negate():
    predicate = Not(Compare("<", A_TEMP, Literal(0.0)))
    env = {("A", "temp"): (np.array([-1.0, 1.0, -1.0]), np.array([1.0, 2.0, -0.5]))}
    possible, definite = predicate.masks(env)
    # Interval [-1,1]: maybe; [1,2]: definitely not < 0 -> NOT is TRUE;
    # [-1,-0.5]: definitely < 0 -> NOT is FALSE.
    assert possible.tolist() == [True, True, False]
    assert definite.tolist() == [False, True, False]


# -- hypothesis: random expression trees, all modes agree -------------------


@st.composite
def numeric_expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        leaf = draw(st.sampled_from(["A", "B", "lit"]))
        if leaf == "lit":
            return Literal(draw(st.floats(min_value=-100, max_value=100, allow_nan=False)))
        return Column(leaf, "temp")
    op = draw(st.sampled_from(["add", "sub", "mul", "neg", "abs"]))
    if op == "neg":
        return Neg(draw(numeric_expr(depth=depth + 1)))
    if op == "abs":
        return Abs(draw(numeric_expr(depth=depth + 1)))
    left = draw(numeric_expr(depth=depth + 1))
    right = draw(numeric_expr(depth=depth + 1))
    return {"add": Add, "sub": Sub, "mul": Mul}[op](left, right)


@given(
    numeric_expr(),
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    st.floats(min_value=0, max_value=5),
    st.floats(min_value=0, max_value=5),
)
def test_modes_agree_and_bounds_contain(expr, a, b, wa, wb):
    scalar = {("A", "temp"): a, ("B", "temp"): b}
    exact = expr.evaluate(scalar)

    # Vectorised exact evaluation agrees with scalar evaluation.
    arrays = {("A", "temp"): np.array([a]), ("B", "temp"): np.array([b])}
    vector = np.broadcast_to(expr.values(arrays), (1,))
    assert vector[0] == pytest.approx(exact, rel=1e-9, abs=1e-9)

    # Interval bounds (scalar and vectorised) contain the exact value.
    intervals = {
        ("A", "temp"): Interval(a - wa, a + wa),
        ("B", "temp"): Interval(b - wb, b + wb),
    }
    bounds = expr.bounds(intervals)
    slack = 1e-7 + 1e-9 * max(abs(bounds.lo), abs(bounds.hi))
    assert bounds.lo - slack <= exact <= bounds.hi + slack

    env = {
        ("A", "temp"): (np.array([a - wa]), np.array([a + wa])),
        ("B", "temp"): (np.array([b - wb]), np.array([b + wb])),
    }
    lo, hi = expr.bounds_arrays(env)
    lo = np.broadcast_to(lo, (1,))
    hi = np.broadcast_to(hi, (1,))
    assert lo[0] == pytest.approx(bounds.lo, rel=1e-9, abs=1e-9)
    assert hi[0] == pytest.approx(bounds.hi, rel=1e-9, abs=1e-9)


def test_aggregate_apply():
    agg = Aggregate("MIN", A_TEMP)
    assert agg.apply([3.0, 1.0, 2.0], 3) == 1.0
    assert Aggregate("MAX", A_TEMP).apply([3.0, 1.0], 2) == 3.0
    assert Aggregate("AVG", A_TEMP).apply([1.0, 3.0], 2) == 2.0
    assert Aggregate("SUM", A_TEMP).apply([1.0, 3.0], 2) == 4.0
    assert Aggregate("COUNT", None).apply([], 7) == 7.0


def test_aggregate_validation():
    with pytest.raises(QueryError):
        Aggregate("MEDIAN", A_TEMP)
    with pytest.raises(QueryError):
        Aggregate("MIN", None)
    with pytest.raises(EvaluationError):
        Aggregate("MIN", A_TEMP).apply([], 0)
    assert Aggregate("COUNT", None).sql() == "COUNT(*)"


def test_expression_equality_and_hash():
    assert Add(A_TEMP, Literal(1)) == Add(Column("A", "temp"), Literal(1))
    assert hash(Add(A_TEMP, Literal(1))) == hash(Add(Column("A", "temp"), Literal(1)))
    assert Add(A_TEMP, Literal(1)) != Add(A_TEMP, Literal(2))
