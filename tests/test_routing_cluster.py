"""Cluster-head routing: election, tree validity, and the strict-hop rule."""

import pytest

from repro.bench.workloads import build_scenario, ratio_query_builder
from repro.errors import RoutingError
from repro.joins.runner import run_snapshot
from repro.routing.cluster import (
    ROUTING_MODES,
    build_cluster_tree,
    build_routing_tree,
    elect_heads,
    _bfs_hops,
)
from repro.routing.ctp import build_tree
from repro.sim.network import DeploymentConfig, deploy_uniform
from repro.sim.node import BASE_STATION_ID
from repro.sim.spatial import grid_cell


@pytest.fixture(scope="module")
def network():
    base = DeploymentConfig().scaled(300)
    config = DeploymentConfig(
        node_count=base.node_count,
        area_side_m=base.area_side_m,
        radio_range_m=base.radio_range_m,
        seed=0,
    )
    return deploy_uniform(config)


def test_routing_modes_catalogue():
    assert ROUTING_MODES == ("flat", "cluster")


def test_unknown_routing_mode_rejected(network):
    with pytest.raises(RoutingError, match="unknown routing mode"):
        build_routing_tree(network, routing="mesh")


def test_flat_mode_is_plain_ctp(network):
    flat = build_routing_tree(network, routing="flat", seed=0)
    ctp = build_tree(network, seed=0)
    assert flat.as_parent_map() == ctp.as_parent_map()


def test_one_head_per_occupied_cell(network):
    pitch = network.radio_range_m
    heads = elect_heads(network)
    occupied = {
        grid_cell(node.x, node.y, pitch)
        for node in network.nodes.values()
        if node.alive and node.node_id != BASE_STATION_ID
    }
    assert set(heads) == occupied
    # Every head lives in the cell it governs and is the closest-to-centre
    # alive node there (ties by lowest id).
    for cell, head in heads.items():
        node = network.nodes[head]
        assert grid_cell(node.x, node.y, pitch) == cell
        cx, cy = (cell[0] + 0.5) * pitch, (cell[1] + 0.5) * pitch
        best = min(
            (
                ((n.x - cx) ** 2 + (n.y - cy) ** 2, n.node_id)
                for n in network.nodes.values()
                if n.alive
                and n.node_id != BASE_STATION_ID
                and grid_cell(n.x, n.y, pitch) == cell
            ),
        )
        assert best[1] == head


def test_elect_heads_rejects_nonpositive_cell(network):
    with pytest.raises(RoutingError, match="positive"):
        elect_heads(network, cell_m=0.0)


def test_cluster_tree_valid_and_total(network):
    layout = build_cluster_tree(network, seed=0)
    flat = build_tree(network, seed=0)
    # Same node set as the flat tree — clustering never drops anyone.
    assert set(layout.tree.node_ids) == set(flat.node_ids)
    # Every tree edge is a live radio link.
    for node_id, parent in layout.tree.as_parent_map().items():
        assert network.link_up(node_id, parent)


def test_members_obey_strict_hop_rule(network):
    layout = build_cluster_tree(network, seed=0)
    hops = _bfs_hops(network)
    for member, head in layout.members.items():
        assert head in layout.heads
        assert network.link_up(member, head)
        assert hops[head] < hops[member]
        assert layout.tree.parent(member) == head
    # Path optimality: depth never exceeds the BFS hop distance.
    for node_id in layout.tree.node_ids:
        if node_id != BASE_STATION_ID:
            assert layout.tree.depth(node_id) <= hops[node_id]
    assert layout.tree.height == build_tree(network, seed=0).height


def test_cluster_layout_statistics(network):
    layout = build_cluster_tree(network, seed=0)
    assert layout.head_count == len(layout.heads) > 0
    assert layout.reparented_count == len(layout.members) > 0
    assert layout.mean_cluster_size() == pytest.approx(
        len(layout.members) / len(layout.heads)
    )
    assert layout.cell_m == network.radio_range_m


def test_cluster_tree_deterministic(network):
    a = build_cluster_tree(network, seed=0)
    b = build_cluster_tree(network, seed=0)
    assert a.tree.as_parent_map() == b.tree.as_parent_map()
    assert a.heads == b.heads and a.members == b.members


def test_cluster_concentrates_interior_forwarders(network):
    """The point of clustering: fewer distinct interior (forwarder) nodes."""
    flat = build_tree(network, seed=0)
    clustered = build_cluster_tree(network, seed=0).tree

    def interior(tree):
        return {
            node_id
            for node_id in tree.node_ids
            if node_id != BASE_STATION_ID and not tree.is_leaf(node_id)
        }

    assert len(interior(clustered)) < len(interior(flat))


def test_join_results_identical_flat_vs_cluster():
    """Routing shape changes cost, never correctness."""
    query = ratio_query_builder(1, 3)(6.0)
    flat = build_scenario(200, seed=0, routing="flat")
    clustered = build_scenario(200, seed=0, routing="cluster")
    out_flat = run_snapshot(
        flat.network, flat.world, query, "sens-join", tree=flat.tree
    )
    out_cluster = run_snapshot(
        clustered.network, clustered.world, query, "sens-join",
        tree=clustered.tree,
    )
    assert out_flat.result.result_set() == out_cluster.result.result_set()
    assert out_flat.result.match_count == out_cluster.result.match_count
