"""Service-layer tests: workload generators, broker equivalence, sharing.

The load-bearing guarantees under test:

* workload generators are pure functions of ``(spec, templates)`` — same
  seed, same stream, down to the last arrival time;
* the broker with sharing off is *byte-identical* to issuing the queries
  one at a time through :func:`repro.joins.runner.run_snapshot`;
* with sharing on, every per-query result set still equals both the
  independent single-query run and the lossless central oracle — the
  composed filter is conservative, never lossy;
* at high concurrency the shared path spends measurably less total energy
  than the serial reference (the amortization the broker exists for).
"""

from __future__ import annotations

import pytest

from repro.joins.base import ExecutionContext, oracle_result
from repro.joins.des_sensjoin import DesSensJoin
from repro.joins.filterbuild import build_join_filter, compose_filters
from repro.joins.runner import run_snapshot
from repro.joins.sensjoin import SensJoin
from repro.obs.telemetry import Telemetry
from repro.query.parser import parse_query
from repro.routing.ctp import build_tree
from repro.errors import BrokerError
from repro.joins.base import JoinAlgorithm
from repro.service import (
    BrokerConfig,
    DeadlinePolicy,
    QueryBroker,
    QueryRequest,
    WorkloadSpec,
    bursty_arrivals,
    generate_workload,
    poisson_arrivals,
    sharing_signature,
    zipf_weights,
)
from repro.sim.trace import (
    BROKER_ADMIT,
    BROKER_BATCH,
    BROKER_COMPLETE,
    BROKER_DEGRADED,
    BROKER_GROUP_SPLIT,
    BROKER_RETRY,
    BROKER_SHED,
    FILTER_COMPOSED,
    FILTER_PIGGYBACK,
    KNOWN_EVENT_KINDS,
)


def _tail(threshold: float, select: str = "A.hum, B.hum"):
    return parse_query(
        f"SELECT {select} FROM sensors A, sensors B "
        f"WHERE A.temp - B.temp > {threshold} ONCE"
    )


@pytest.fixture(scope="module")
def deployment(make_deployment):
    """80 nodes, no drift: field values are time-invariant, so the module
    can share one deployment — every execution path resets accounting."""
    network, world = make_deployment(node_count=80, seed=7)
    tree = build_tree(network, seed=7)
    return network, world, tree


@pytest.fixture(scope="module")
def templates():
    # 0 and 1 differ only in the join threshold -> same sharing signature;
    # 2 carries an extra full-tuple attribute -> its own share group.
    return [_tail(1.0), _tail(1.6), _tail(1.0, select="A.hum, B.hum, A.pres")]


def _simultaneous(queries):
    """All queries arrive at t=0 — one maximal batch."""
    return [
        QueryRequest(query_id=i, arrival_s=0.0, template_index=i, query=q)
        for i, q in enumerate(queries)
    ]


# -- workload generators -----------------------------------------------------


def test_poisson_arrivals_deterministic():
    assert poisson_arrivals(0.5, 20, seed=3) == poisson_arrivals(0.5, 20, seed=3)
    assert poisson_arrivals(0.5, 20, seed=3) != poisson_arrivals(0.5, 20, seed=4)


def test_poisson_arrivals_increasing():
    arrivals = poisson_arrivals(2.0, 50, seed=0)
    assert len(arrivals) == 50
    assert all(a > 0 for a in arrivals)
    assert arrivals == sorted(arrivals)


def test_bursty_arrivals_deterministic():
    assert bursty_arrivals(0.5, 20, seed=3) == bursty_arrivals(0.5, 20, seed=3)
    assert bursty_arrivals(0.5, 20, seed=3) != bursty_arrivals(0.5, 20, seed=4)


def test_bursty_arrivals_land_inside_on_windows():
    on, off = 10.0, 40.0
    period = on + off
    arrivals = bursty_arrivals(0.2, 100, seed=1, burst_on_s=on, burst_off_s=off)
    assert arrivals == sorted(arrivals)
    for a in arrivals:
        offset = a % period
        assert offset < on, f"arrival {a} fell in an OFF window"


def test_zipf_weights_normalized_and_decreasing():
    weights = zipf_weights(6, 1.1)
    assert sum(weights) == pytest.approx(1.0)
    assert weights == sorted(weights, reverse=True)
    uniform = zipf_weights(4, 0.0)
    assert all(w == pytest.approx(0.25) for w in uniform)


def test_generate_workload_deterministic(templates):
    spec = WorkloadSpec(kind="bursty", rate_hz=0.5, count=12, seed=9)
    first = generate_workload(spec, templates)
    second = generate_workload(spec, templates)
    assert [(r.query_id, r.arrival_s, r.template_index) for r in first] == [
        (r.query_id, r.arrival_s, r.template_index) for r in second
    ]
    assert all(r.query is templates[r.template_index] for r in first)


def test_generate_workload_pool_size_keeps_arrivals(templates):
    """Growing the template pool must not perturb the arrival clock."""
    spec = WorkloadSpec(kind="poisson", rate_hz=0.5, count=12, seed=9)
    small = generate_workload(spec, templates[:1])
    big = generate_workload(spec, templates)
    assert [r.arrival_s for r in small] == [r.arrival_s for r in big]


def test_workload_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(kind="sinusoidal")
    with pytest.raises(ValueError):
        WorkloadSpec(rate_hz=0.0)
    with pytest.raises(ValueError):
        WorkloadSpec(count=0)
    with pytest.raises(ValueError):
        WorkloadSpec(zipf_s=-1.0)
    with pytest.raises(ValueError):
        WorkloadSpec(burst_on_s=0.0)
    with pytest.raises(ValueError):
        generate_workload(WorkloadSpec(), [])


# -- sharing signature and filter composition --------------------------------


def test_sharing_signature_ignores_join_predicate(templates):
    assert sharing_signature(templates[0]) == sharing_signature(templates[1])


def test_sharing_signature_splits_on_full_attributes(templates):
    assert sharing_signature(templates[0]) != sharing_signature(templates[2])


def test_sharing_signature_splits_on_selection():
    plain = _tail(1.0)
    selected = parse_query(
        "SELECT A.hum, B.hum FROM sensors A, sensors B "
        "WHERE A.temp - B.temp > 1.0 AND A.hum > 30 ONCE"
    )
    assert sharing_signature(plain) != sharing_signature(selected)


def test_compose_filters_is_superset_union(deployment):
    network, world, tree = deployment
    world.take_snapshot(0.0)
    queries = [_tail(1.0), _tail(1.6)]
    context = ExecutionContext(network=network, tree=tree, world=world, query=queries[0])
    engine = SensJoin()
    fmt = context.tuple_format()
    from repro.joins.sensjoin import _NodeState

    states = {nid: _NodeState() for nid in tree.node_ids}
    bs_points, _ = engine._collection_phase(context, fmt, states, False, {})
    per_query = [
        build_join_filter(ExecutionContext(network=network, tree=tree, world=world, query=q).tuple_format(), bs_points)
        for q in queries
    ]
    composed = compose_filters(per_query)
    for single in per_query:
        zs = {z for _, z in composed}
        for flags, z in single:
            assert z in zs
            merged = next(f for f, cz in composed if cz == z)
            assert merged & flags == flags, "composed filter dropped a role bit"
    assert compose_filters([]) == frozenset()
    assert compose_filters([per_query[0]]) == per_query[0]


# -- broker: no-sharing reference path ---------------------------------------


def test_broker_concurrency_one_matches_single_query_path(deployment, templates):
    network, world, tree = deployment
    requests = _simultaneous(templates)
    broker = QueryBroker(
        network, world, BrokerConfig(concurrency=1, share_work=False), tree=tree
    )
    report = broker.run(requests)
    assert report.batch_count == len(requests)
    for request, outcome in zip(requests, report.outcomes):
        reference = run_snapshot(network, world, request.query, tree=tree)
        assert outcome.result_set() == reference.result.result_set()
        assert outcome.tx_share_packets == reference.total_transmissions
        assert outcome.energy_share_j == pytest.approx(network.total_energy())
        assert outcome.group_size == 1


def test_broker_no_sharing_emits_identical_protocol_traces(deployment, templates):
    """The serial broker path is literally run_snapshot: same trace stream."""
    network, world, tree = deployment
    request = _simultaneous(templates[:1])
    telemetry = Telemetry.capture()
    broker = QueryBroker(
        network, world, BrokerConfig(concurrency=1, share_work=False),
        tree=tree, telemetry=telemetry,
    )
    broker.run(request)
    reference = Telemetry.capture()
    run_snapshot(network, world, templates[0], tree=tree, telemetry=reference)
    broker_kinds = {BROKER_ADMIT, BROKER_BATCH, BROKER_COMPLETE}
    protocol = [
        (e.time, e.node_id, e.kind, tuple(sorted(e.detail.items())))
        for e in telemetry.tracer.events
        if e.kind not in broker_kinds
    ]
    expected = [
        (e.time, e.node_id, e.kind, tuple(sorted(e.detail.items())))
        for e in reference.tracer.events
    ]
    assert protocol == expected


def test_broker_serial_latency_counts_queue_wait(deployment, templates):
    network, world, tree = deployment
    requests = _simultaneous([templates[0]] * 3)
    broker = QueryBroker(
        network, world, BrokerConfig(concurrency=1, share_work=False), tree=tree
    )
    report = broker.run(requests)
    latencies = [o.latency_s for o in report.outcomes]
    # Queries run back to back; the later ones wait for the earlier ones.
    assert latencies[0] < latencies[1] < latencies[2]
    assert report.latency_percentile(0.0) == pytest.approx(min(latencies))
    assert report.latency_percentile(1.0) == pytest.approx(max(latencies))


# -- broker: shared execution ------------------------------------------------


@pytest.fixture(scope="module")
def shared_run(deployment, templates):
    """One shared batch of 6 queries (two share groups), plus references."""
    network, world, tree = deployment
    pool = [templates[0], templates[1], templates[2], _tail(2.2)]
    queries = [pool[0], pool[1], pool[2], pool[3], pool[0], pool[2]]
    requests = _simultaneous(queries)
    telemetry = Telemetry.capture()
    broker = QueryBroker(
        network, world, BrokerConfig(concurrency=len(requests)), tree=tree,
        telemetry=telemetry,
    )
    report = broker.run(requests)
    shared_energy = report.total_energy_j
    shared_tx = report.total_tx_packets
    references = {}
    serial_energy = 0.0
    for request in requests:
        outcome = run_snapshot(network, world, request.query, tree=tree)
        references[request.query_id] = outcome.result.result_set()
        serial_energy += network.total_energy()
    return report, telemetry, requests, references, shared_energy, serial_energy, shared_tx


def test_shared_batch_runs_as_one_epoch(shared_run):
    report = shared_run[0]
    assert report.batch_count == 1
    # Four tail queries (three distinct thresholds) share one signature;
    # the extra-attribute template forms the second group.
    assert report.details["share_groups"] == 2
    assert report.details["composed_filters"] >= 1
    assert report.details["piggybacked_broadcasts"] >= 1


def test_shared_results_match_independent_runs(shared_run):
    report, _, requests, references = shared_run[:4]
    assert len(report.outcomes) == len(requests)
    for outcome in report.outcomes:
        assert outcome.result_set() == references[outcome.request.query_id], (
            f"sharing changed query {outcome.request.query_id}"
        )


def test_shared_results_match_oracle(deployment, shared_run):
    network, world, tree = deployment
    report = shared_run[0]
    for outcome in report.outcomes:
        context = ExecutionContext(
            network=network, tree=tree, world=world, query=outcome.request.query
        )
        assert outcome.result_set() == oracle_result(context).result_set()


def test_shared_energy_amortizes(shared_run):
    shared_energy, serial_energy = shared_run[4], shared_run[5]
    assert shared_energy < serial_energy, (
        f"sharing should cost less: shared={shared_energy} serial={serial_energy}"
    )


def test_shared_energy_attribution_reconciles(deployment, shared_run):
    """Per-query shares must sum back to what the network actually spent."""
    network = deployment[0]
    report, _, requests = shared_run[:3]
    # The last thing shared_run did on the network was the final reference
    # run, so re-run the broker to read the ledger right after it.
    # Instead, rely on the report's own invariant: shares sum to the total.
    assert sum(o.energy_share_j for o in report.outcomes) == pytest.approx(
        report.total_energy_j
    )
    assert sum(o.tx_share_packets for o in report.outcomes) == pytest.approx(
        report.total_tx_packets
    )


def test_shared_batch_emits_broker_trace_kinds(shared_run):
    telemetry = shared_run[1]
    kinds = telemetry.tracer.kinds()
    for kind in (BROKER_ADMIT, BROKER_BATCH, BROKER_COMPLETE, FILTER_COMPOSED,
                 FILTER_PIGGYBACK):
        assert kind in kinds, kind
    assert kinds <= KNOWN_EVENT_KINDS


def test_shared_batch_counters(shared_run):
    telemetry = shared_run[1]
    registry = telemetry.registry
    assert registry.total("broker_queries_total") == 6
    assert registry.total("broker_batches_total") == 1
    assert registry.total("broker_share_groups_total") == 2


def test_sharing_disabled_same_results_as_shared(deployment, templates, shared_run):
    """share_work=False on the same stream: different cost, same answers."""
    network, world, tree = deployment
    report, _, requests, references = shared_run[:4]
    broker = QueryBroker(
        network, world, BrokerConfig(concurrency=len(requests), share_work=False),
        tree=tree,
    )
    serial_report = broker.run(list(requests))
    for outcome in serial_report.outcomes:
        assert outcome.result_set() == references[outcome.request.query_id]


def test_staggered_arrivals_form_multiple_batches(deployment, templates):
    network, world, tree = deployment
    requests = [
        QueryRequest(query_id=0, arrival_s=0.0, template_index=0, query=templates[0]),
        QueryRequest(query_id=1, arrival_s=0.0, template_index=1, query=templates[1]),
        QueryRequest(query_id=2, arrival_s=1e6, template_index=0, query=templates[0]),
    ]
    broker = QueryBroker(network, world, BrokerConfig(concurrency=8), tree=tree)
    report = broker.run(requests)
    # The two simultaneous arrivals batch together; the far-future query
    # cannot ride with them.
    assert report.batch_count == 2
    last = next(o for o in report.outcomes if o.request.query_id == 2)
    assert last.admitted_s >= 1e6


def test_concurrency_limit_respected(deployment, templates):
    network, world, tree = deployment
    requests = _simultaneous([templates[0]] * 5)
    broker = QueryBroker(network, world, BrokerConfig(concurrency=2), tree=tree)
    report = broker.run(requests)
    assert report.batch_count == 3  # 2 + 2 + 1
    sizes = {}
    for outcome in report.outcomes:
        sizes.setdefault(outcome.batch_index, 0)
        sizes[outcome.batch_index] += 1
    assert sorted(sizes.values(), reverse=True) == [2, 2, 1]


def test_broker_config_validation():
    with pytest.raises(ValueError):
        BrokerConfig(concurrency=0)


def test_latency_percentile_validation(deployment, templates):
    network, world, tree = deployment
    broker = QueryBroker(network, world, BrokerConfig(concurrency=1), tree=tree)
    report = broker.run(_simultaneous(templates[:1]))
    with pytest.raises(ValueError):
        report.latency_percentile(1.5)
    from repro.service import BrokerReport

    with pytest.raises(ValueError):
        BrokerReport(outcomes=[], total_energy_j=0, total_tx_packets=0,
                     batch_count=0).latency_percentile(0.5)


# -- filter override hook ----------------------------------------------------


def test_filter_override_superset_keeps_sensjoin_exact(deployment):
    """A widened (composed) filter must not change a SensJoin result."""
    network, world, tree = deployment
    query, other = _tail(1.4), _tail(0.8)

    def widen(fmt, points):
        return compose_filters(
            [build_join_filter(fmt, points),
             build_join_filter(ExecutionContext(
                 network=network, tree=tree, world=world, query=other
             ).tuple_format(), points)]
        )

    plain = run_snapshot(network, world, query, tree=tree)
    widened = run_snapshot(
        network, world, query, tree=tree,
        algorithm=SensJoin(filter_override=widen),
    )
    assert widened.result.result_set() == plain.result.result_set()
    # The wider filter can only let *more* tuples through phase 2.
    assert widened.total_transmissions >= plain.total_transmissions


def test_filter_override_superset_keeps_des_sensjoin_exact(deployment):
    network, world, tree = deployment
    query, other = _tail(1.4), _tail(0.8)

    def widen(fmt, points):
        return compose_filters(
            [build_join_filter(fmt, points),
             build_join_filter(ExecutionContext(
                 network=network, tree=tree, world=world, query=other
             ).tuple_format(), points)]
        )

    plain = run_snapshot(network, world, query, tree=tree, algorithm="des-sensjoin")
    widened = run_snapshot(
        network, world, query, tree=tree,
        algorithm=DesSensJoin(filter_override=widen),
    )
    assert widened.result.result_set() == plain.result.result_set()


# -- resilience: error isolation, deadlines, shedding ------------------------


class _FlakyEngine(JoinAlgorithm):
    """Delegates to SensJoin but raises on one chosen call (1-based)."""

    name = "flaky"

    def __init__(self, fail_on: int):
        self._fail_on = fail_on
        self.calls = 0

    def execute(self, context):
        self.calls += 1
        if self.calls == self._fail_on:
            raise RuntimeError("injected engine fault")
        return SensJoin().execute(context)


def test_engine_fault_does_not_abort_serial_batch(deployment, templates):
    network, world, tree = deployment
    requests = _simultaneous(templates)
    telemetry = Telemetry.capture()
    broker = QueryBroker(
        network, world,
        BrokerConfig(
            concurrency=len(requests), share_work=False,
            engine=_FlakyEngine(fail_on=2),
        ),
        tree=tree, telemetry=telemetry,
    )
    report = broker.run(requests)
    assert [o.status for o in report.outcomes] == [
        "completed", "degraded", "completed"
    ]
    failed = report.outcomes[1]
    assert isinstance(failed.error, BrokerError)
    assert failed.error.query_id == 1
    assert isinstance(failed.error.cause, RuntimeError)
    assert failed.result_set() == set()
    assert failed.recall == 0.0
    assert BROKER_DEGRADED in telemetry.tracer.kinds()
    assert telemetry.registry.total("broker_degraded_total") == 1
    # The healthy queries still match their independent reference runs.
    for outcome in (report.outcomes[0], report.outcomes[2]):
        reference = run_snapshot(network, world, outcome.request.query, tree=tree)
        assert outcome.result_set() == reference.result.result_set()


def test_deadline_timeout_retries_then_splits(deployment, templates):
    """A wall-clock budget no epoch can meet walks the whole ladder."""
    network, world, tree = deployment
    requests = _simultaneous([templates[0], templates[1]])
    telemetry = Telemetry.capture()
    broker = QueryBroker(
        network, world,
        BrokerConfig(
            concurrency=2,
            deadline=DeadlinePolicy(timeout_s=1e-6, max_retries=1, seed=3),
        ),
        tree=tree, telemetry=telemetry,
    )
    report = broker.run(requests)
    kinds = telemetry.tracer.kinds()
    assert BROKER_RETRY in kinds
    assert BROKER_GROUP_SPLIT in kinds
    assert kinds <= KNOWN_EVENT_KINDS
    assert telemetry.registry.total("broker_retries_total") == 1
    assert telemetry.registry.total("broker_group_splits_total") == 1
    for outcome in report.outcomes:
        # Two timed-out shared attempts, then one accepted split run; no
        # churn means the split answers stay exact.
        assert outcome.attempts == 3
        assert outcome.status == "completed"
        assert outcome.recall == 1.0
        assert outcome.group_size == 1


def test_deadline_backoff_is_seeded(deployment, templates):
    def retry_delays(seed):
        telemetry = Telemetry.capture()
        QueryBroker(
            network, world,
            BrokerConfig(
                concurrency=2,
                deadline=DeadlinePolicy(timeout_s=1e-6, max_retries=2, seed=seed),
            ),
            tree=tree, telemetry=telemetry,
        ).run(_simultaneous([templates[0], templates[1]]))
        return [
            e.detail["delay_s"]
            for e in telemetry.tracer.events
            if e.kind == BROKER_RETRY
        ]

    network, world, tree = deployment
    assert retry_delays(3) == retry_delays(3)
    assert retry_delays(3) != retry_delays(4)


def test_admission_depth_sheds_overflow(deployment, templates):
    network, world, tree = deployment
    requests = _simultaneous([templates[0]] * 7)
    telemetry = Telemetry.capture()
    broker = QueryBroker(
        network, world,
        BrokerConfig(concurrency=2, share_work=False, admission_depth=2),
        tree=tree, telemetry=telemetry,
    )
    report = broker.run(requests)
    shed = [o for o in report.outcomes if o.status == "shed"]
    # Batch of 2 admitted, 2 more may wait; the other 3 are shed at once.
    assert [o.request.query_id for o in shed] == [4, 5, 6]
    assert report.details["shed"] == 3
    for outcome in shed:
        assert outcome.result_set() == set()
        assert outcome.recall == 0.0
        assert outcome.energy_share_j == 0.0
        assert outcome.attempts == 0
    completed = [o for o in report.outcomes if o.status == "completed"]
    assert len(completed) == 4
    assert BROKER_SHED in telemetry.tracer.kinds()
    assert telemetry.registry.total("broker_shed_total") == 3


def test_admission_depth_zero_keeps_batch_only(deployment, templates):
    network, world, tree = deployment
    requests = _simultaneous([templates[0]] * 4)
    broker = QueryBroker(
        network, world,
        BrokerConfig(concurrency=2, share_work=False, admission_depth=0),
        tree=tree,
    )
    report = broker.run(requests)
    assert sum(1 for o in report.outcomes if o.status == "shed") == 2
    assert sum(1 for o in report.outcomes if o.status == "completed") == 2
