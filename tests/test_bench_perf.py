"""Perf suite tests: selection, snapshots, scoring, the gate, the CLI.

The timed runs here use tiny ``--only`` selections and one repeat — the
point is the plumbing (snapshot schema, numbering, deltas, regression
gate, exit codes), not the measurements themselves.
"""

import json

import pytest

from repro.bench.__main__ import main as bench_main
from repro.bench.perf import (
    SCHEMA,
    build_suite,
    compare_snapshots,
    default_results_dir,
    latest_snapshot,
    next_snapshot_path,
    snapshot_entries,
    snapshot_history,
)
from repro.bench.perf import DEFAULT_RESULTS_DIR as DEFAULT_RESULTS_DIR_LOCAL

FAST_ONLY = ["kernel.events_depth64"]


def _perf(tmp_path, *extra):
    argv = ["perf", "--repeats", "1", "--results-dir", str(tmp_path)]
    for pattern in FAST_ONLY:
        argv += ["--only", pattern]
    return bench_main(argv + list(extra))


# ---------------------------------------------------------------------------
# Suite construction / selection
# ---------------------------------------------------------------------------


class TestSuite:
    def test_covers_all_three_layers(self):
        suite = build_suite()
        groups = {bench.group for bench in suite}
        assert {"codec", "kernel", "e2e"} <= groups
        keys = [bench.key for bench in suite]
        for required in (
            "codec.quantize_encode",
            "codec.zcurve_interleave",
            "codec.zcurve_deinterleave",
            "codec.bits_writer",
            "codec.quadtree_encode",
            "codec.quadtree_size",
            "codec.quadtree_decode",
            "kernel.events_depth64",
        ):
            assert required in keys
        # e2e covers both engines at three or more node counts.
        e2e = [bench.name for bench in suite if bench.group == "e2e"]
        assert len({name.split("_n")[1] for name in e2e}) >= 3
        assert any(name.startswith("sens-join") for name in e2e)
        assert any(name.startswith("des-sensjoin") for name in e2e)

    def test_optimized_kernels_carry_reference_twins(self):
        by_key = {bench.key: bench for bench in build_suite()}
        for key in (
            "codec.zcurve_interleave",
            "codec.zcurve_deinterleave",
            "codec.bits_writer",
            "codec.quadtree_encode",
            "codec.quadtree_size",
            "codec.quadtree_decode",
        ):
            assert by_key[key].reference is not None, key

    def test_e2e_and_setops_are_untracked(self):
        for bench in build_suite():
            if bench.group in ("e2e", "setops"):
                assert not bench.tracked
            else:
                assert bench.tracked

    def test_only_filters_by_glob(self):
        keys = [bench.key for bench in build_suite(["codec.zcurve_*"])]
        assert keys == ["codec.zcurve_interleave", "codec.zcurve_deinterleave"]

    def test_only_without_match_raises(self):
        with pytest.raises(ValueError, match="no perf bench matches"):
            build_suite(["nope*"])


# ---------------------------------------------------------------------------
# Snapshot files
# ---------------------------------------------------------------------------


class TestSnapshots:
    def test_numbering_starts_at_one_and_increments(self, tmp_path):
        assert latest_snapshot(tmp_path) is None
        assert next_snapshot_path(tmp_path).name == "BENCH_1.json"
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_7.json").write_text("{}")
        assert latest_snapshot(tmp_path).name == "BENCH_7.json"
        assert next_snapshot_path(tmp_path).name == "BENCH_8.json"

    def test_corrupt_baseline_is_a_value_error(self, tmp_path):
        bad = tmp_path / "BENCH_1.json"
        bad.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            snapshot_entries(bad)
        bad.write_text(json.dumps({"schema": "other/9"}))
        with pytest.raises(ValueError, match="schema"):
            snapshot_entries(bad)

    def test_entries_key_by_group_and_name(self, tmp_path):
        path = tmp_path / "BENCH_1.json"
        path.write_text(
            json.dumps(
                {
                    "schema": SCHEMA,
                    "entries": [
                        {"group": "codec", "name": "x", "score": 1.0, "tracked": True}
                    ],
                }
            )
        )
        assert set(snapshot_entries(path)) == {"codec.x"}


# ---------------------------------------------------------------------------
# Regression gate
# ---------------------------------------------------------------------------


def _entry(score, tracked=True):
    return {"group": "codec", "name": "k", "score": score, "tracked": tracked}


class TestGate:
    def test_flags_only_past_threshold(self):
        baseline = {"codec.k": _entry(10.0)}
        assert compare_snapshots(baseline, {"codec.k": _entry(12.0)}, 0.25) == []
        regressions = compare_snapshots(baseline, {"codec.k": _entry(13.0)}, 0.25)
        assert [r.key for r in regressions] == ["codec.k"]
        assert regressions[0].ratio == pytest.approx(1.3)

    def test_untracked_and_new_entries_are_ignored(self):
        baseline = {"codec.k": _entry(10.0, tracked=False)}
        assert compare_snapshots(baseline, {"codec.k": _entry(99.0, tracked=False)}) == []
        assert compare_snapshots({}, {"codec.k": _entry(99.0)}) == []

    def test_improvements_pass(self):
        baseline = {"codec.k": _entry(10.0)}
        assert compare_snapshots(baseline, {"codec.k": _entry(1.0)}) == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_run_writes_schema_stamped_snapshot(self, tmp_path, capsys):
        assert _perf(tmp_path) == 0
        out = capsys.readouterr().out
        assert "BENCH_1.json" in out
        payload = json.loads((tmp_path / "BENCH_1.json").read_text())
        assert payload["schema"] == SCHEMA
        assert payload["calibration_ns_per_op"] > 0
        entry = payload["entries"][0]
        assert entry["group"] == "kernel"
        assert entry["ns_per_op"] > 0 and entry["score"] > 0

    def test_second_run_prints_baseline_delta(self, tmp_path, capsys):
        assert _perf(tmp_path) == 0
        capsys.readouterr()
        assert _perf(tmp_path) == 0
        out = capsys.readouterr().out
        assert "vs baseline" in out
        assert "BENCH_2.json" in out
        assert json.loads((tmp_path / "BENCH_2.json").read_text())["baseline"].endswith(
            "BENCH_1.json"
        )

    def test_no_write_leaves_results_dir_untouched(self, tmp_path):
        assert _perf(tmp_path, "--no-write") == 0
        assert latest_snapshot(tmp_path) is None

    def test_check_without_baseline_passes(self, tmp_path, capsys):
        assert _perf(tmp_path, "--check") == 0
        assert "nothing to gate against" in capsys.readouterr().out

    def test_check_fails_on_regression(self, tmp_path, capsys):
        # A fabricated baseline with impossibly good scores forces the gate.
        baseline = tmp_path / "BENCH_1.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema": SCHEMA,
                    "entries": [
                        {
                            "group": "kernel",
                            "name": "events_depth64",
                            "score": 1e-9,
                            "tracked": True,
                        }
                    ],
                }
            )
        )
        code = _perf(tmp_path, "--check", "--baseline", str(baseline), "--no-write")
        assert code == 1
        assert "REGRESSION kernel.events_depth64" in capsys.readouterr().err

    def test_unknown_only_pattern_exits_2(self, tmp_path, capsys):
        code = bench_main(
            ["perf", "--only", "nope*", "--results-dir", str(tmp_path)]
        )
        assert code == 2
        assert "no perf bench matches" in capsys.readouterr().err

    def test_bad_repeats_exits_2(self, tmp_path, capsys):
        code = bench_main(
            ["perf", "--repeats", "0", "--results-dir", str(tmp_path)]
        )
        assert code == 2
        assert "--repeats" in capsys.readouterr().err

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        code = _perf(tmp_path, "--baseline", str(tmp_path / "BENCH_9.json"))
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_measured_speedup_recorded_for_reference_twins(self, tmp_path):
        argv = [
            "perf", "--repeats", "1", "--results-dir", str(tmp_path),
            "--only", "codec.zcurve_interleave",
        ]
        assert bench_main(argv) == 0
        payload = json.loads((tmp_path / "BENCH_1.json").read_text())
        entry = payload["entries"][0]
        assert entry["reference_ns_per_op"] > 0
        assert entry["speedup"] > 1.0


# ---------------------------------------------------------------------------
# Snapshot history / trend
# ---------------------------------------------------------------------------


def _write_snapshot(path, score):
    path.write_text(
        json.dumps(
            {
                "schema": SCHEMA,
                "entries": [
                    {"group": "kernel", "name": "k", "score": score, "tracked": True}
                ],
            }
        )
    )


class TestSnapshotHistory:
    def test_history_is_in_snapshot_order(self, tmp_path):
        for number in (3, 1, 10):
            _write_snapshot(tmp_path / f"BENCH_{number}.json", float(number))
        names = [path.name for path in snapshot_history(tmp_path)]
        assert names == ["BENCH_1.json", "BENCH_3.json", "BENCH_10.json"]

    def test_default_results_dir_is_cwd_independent(self, tmp_path, monkeypatch):
        # The committed history must be visible from any working directory
        # (this is what made the perf trajectory read as empty before):
        # with no local snapshots, the repo-anchored directory wins.
        monkeypatch.chdir(tmp_path)
        resolved = default_results_dir()
        assert resolved.is_absolute()
        assert snapshot_history(resolved)

    def test_local_snapshots_win_over_anchored(self, tmp_path, monkeypatch):
        local = tmp_path / DEFAULT_RESULTS_DIR_LOCAL
        local.mkdir(parents=True)
        _write_snapshot(local / "BENCH_1.json", 1.0)
        monkeypatch.chdir(tmp_path)
        assert default_results_dir() == DEFAULT_RESULTS_DIR_LOCAL


class TestTrendCli:
    def test_trend_renders_sparklines(self, tmp_path, capsys):
        _write_snapshot(tmp_path / "BENCH_1.json", 10.0)
        _write_snapshot(tmp_path / "BENCH_2.json", 5.0)
        assert bench_main(["trend", "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "perf trajectory over 2 snapshots" in out
        assert "kernel.k" in out and "-50.0%" in out

    def test_single_snapshot_is_not_a_trend(self, tmp_path, capsys):
        _write_snapshot(tmp_path / "BENCH_1.json", 10.0)
        assert bench_main(["trend", "--results-dir", str(tmp_path)]) == 0
        assert "at least 2" in capsys.readouterr().out

    def test_empty_history_exits_2_only_under_check(self, tmp_path, capsys):
        assert bench_main(["trend", "--results-dir", str(tmp_path)]) == 0
        assert bench_main(["trend", "--results-dir", str(tmp_path), "--check"]) == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_check_fails_on_malformed_snapshot(self, tmp_path, capsys):
        _write_snapshot(tmp_path / "BENCH_1.json", 10.0)
        (tmp_path / "BENCH_2.json").write_text("{nope")
        code = bench_main(["trend", "--results-dir", str(tmp_path), "--check"])
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_malformed_snapshot_skipped_without_check(self, tmp_path, capsys):
        _write_snapshot(tmp_path / "BENCH_1.json", 10.0)
        (tmp_path / "BENCH_2.json").write_text("{nope")
        _write_snapshot(tmp_path / "BENCH_3.json", 20.0)
        assert bench_main(["trend", "--results-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "skipping BENCH_2.json" in captured.err
        assert "+100.0%" in captured.out

    def test_committed_history_passes_check(self, capsys):
        # The repo ships >= 2 snapshots so `trend` has a real trajectory.
        assert bench_main(["trend", "--check"]) == 0
        out = capsys.readouterr().out
        assert "snapshot history ok" in out
        assert "perf trajectory over" in out
