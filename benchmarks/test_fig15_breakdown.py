"""E6 — Fig. 15: SENS-Join cost broken down by protocol step.

Paper: Join-Attribute-Collection is a constant lower bound (depends only on
the join attributes); Filter-Dissemination and Final-Result grow with the
fraction of nodes in the result.
"""

import pytest

from repro.bench.experiments import fig15_step_breakdown
from repro.bench.workloads import build_scenario, calibrated_query
from repro.joins.sensjoin import SensJoin

from conftest import register_series


@pytest.fixture(scope="module")
def series():
    result = fig15_step_breakdown()
    register_series(
        result,
        "collection cost constant in the fraction; filter + final grow with it",
    )
    return result


def test_collection_cost_constant(series):
    collection = series.column("collection_tx")
    assert len(set(collection)) == 1


def test_final_phase_grows_with_fraction(series):
    final = series.column("final_tx")
    assert final == sorted(final)
    assert final[-1] > final[0]


def test_filter_phase_grows_with_fraction(series):
    filter_tx = series.column("filter_tx")
    assert filter_tx[-1] >= filter_tx[0]


def test_phases_sum_to_total(series):
    for row in series.as_dicts():
        assert row["collection_tx"] + row["filter_tx"] + row["final_tx"] == row["sens_total"]


def test_fig15_benchmark(benchmark, series):
    scenario = build_scenario()
    query = calibrated_query(scenario, 3, 5, 0.05)
    benchmark(lambda: scenario.run(query, SensJoin()))
