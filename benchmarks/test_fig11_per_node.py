"""E2 — Fig. 11: per-node transmissions vs number of descendants.

Paper: the most loaded nodes are relieved by more than an order of magnitude
(33% join attributes) / by more than 75% (60%).
"""

import pytest

from repro.bench.experiments import fig11_per_node
from repro.bench.workloads import build_scenario, calibrated_query
from repro.joins.external import ExternalJoin

from conftest import register_series


@pytest.fixture(scope="module", params=["33", "60"])
def series(request):
    result = fig11_per_node(request.param)
    register_series(
        result,
        "most-loaded node relieved >10x at ratio 33%, >75% (4x) at 60%",
    )
    return result


def test_most_loaded_node_strongly_relieved(series):
    last = series.rows[-1]
    assert last[0] == "most-loaded"
    external_max, sens_max, reduction = last[2], last[3], last[4]
    assert external_max > sens_max
    assert reduction >= 2.0


def test_load_grows_with_descendants_for_external(series):
    # External join: more descendants => more forwarding load.
    data_rows = [row for row in series.rows if row[0] != "most-loaded"]
    means = [row[2] for row in data_rows]
    assert means[-1] > means[0]


def test_fig11_benchmark(benchmark, series):
    scenario = build_scenario()
    query = calibrated_query(scenario, 1, 3, 0.05)
    benchmark(lambda: scenario.run(query, ExternalJoin()))
