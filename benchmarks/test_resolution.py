"""§V-B — sensitivity to the quantization resolution.

Paper: "the performance of SENS-Join is insensitive to the resolution used
for the pre-computation as long as it is not too coarse", and footnote 2:
coarse resolutions produce false positives (never wrong results).
"""

import pytest

from repro.bench.experiments import resolution_study
from repro.bench.workloads import build_scenario, calibrated_query
from repro.joins.sensjoin import SensJoin

from conftest import register_series


@pytest.fixture(scope="module")
def series():
    result = resolution_study()
    register_series(
        result,
        "plateau through ~0.5 degC; cost + false positives rise when coarse; "
        "always exact",
    )
    return result


def test_exact_at_every_resolution(series):
    for row in series.as_dicts():
        assert row["identical"] == "True", row


def test_plateau_around_paper_resolution(series):
    """0.02..0.1 degC must cost within a few percent of each other."""
    by_resolution = {row["resolution_degC"]: row["sens_tx"] for row in series.as_dicts()}
    fine = [by_resolution[r] for r in (0.02, 0.05, 0.1)]
    assert max(fine) <= min(fine) * 1.05


def test_too_coarse_costs_more(series):
    by_resolution = {row["resolution_degC"]: row["sens_tx"] for row in series.as_dicts()}
    assert by_resolution[4.0] > by_resolution[0.1]


def test_false_positives_grow_with_coarseness(series):
    fps = series.column("false_positives")
    assert fps[-1] > fps[0]


def test_finer_resolution_needs_more_bits(series):
    bits = series.column("temp_bits")
    assert bits == sorted(bits, reverse=True)


def test_resolution_benchmark(benchmark, series):
    scenario = build_scenario()
    query = calibrated_query(scenario, 1, 3, 0.05)
    benchmark(lambda: scenario.run(query, SensJoin()))
