"""Requirements 1 & 2 — the "general-purpose" claims, plus §II's niche.

Requirement 1: any number and kind of join conditions and attributes.
Requirement 2: arbitrary tuple placements.  The battery runs theta /
similarity+distance / disjunction / aggregate / three-way / heterogeneous
query shapes through both joins; every row must be exact and (at these
selectivities) cheaper under SENS-Join.

The related-work table reproduces §II: the specialised mediated join wins
only in its niche (two small regions, far from the base station, tiny
result) and loses on the general workload.
"""

import pytest

from repro.bench.experiments import generality_study, related_work_study
from repro.bench.workloads import build_scenario
from repro.joins.sensjoin import SensJoin
from repro.query.parser import parse_query

from conftest import register_series


@pytest.fixture(scope="module")
def battery():
    series = generality_study()
    register_series(series, "every shape exact; SENS-Join cheaper at ~5-10% fractions")
    return series


@pytest.fixture(scope="module")
def niche():
    series = related_work_study()
    register_series(
        series,
        "mediated join wins only in its two-region niche (§II)",
    )
    return series


def test_every_shape_exact(battery):
    for row in battery.as_dicts():
        assert row["identical"] == "True", row


def test_sens_wins_on_every_selective_shape(battery):
    for row in battery.as_dicts():
        assert row["sens_tx"] < row["external_tx"], row


def test_mediated_wins_its_niche(niche):
    rows = {(r[0], r[1]): r[2] for r in niche.rows}
    assert rows[("niche(two-regions)", "mediated-join")] < rows[
        ("niche(two-regions)", "external-join")
    ]


def test_mediated_loses_general_setting(niche):
    rows = {(r[0], r[1]): r[2] for r in niche.rows}
    assert rows[("general(self-join)", "sens-join")] < rows[
        ("general(self-join)", "mediated-join")
    ]


def test_all_algorithms_agree_in_both_settings(niche):
    by_setting = {}
    for setting, _algo, _tx, matches in niche.rows:
        by_setting.setdefault(setting, set()).add(matches)
    for setting, match_counts in by_setting.items():
        assert len(match_counts) == 1, setting


def test_generality_benchmark(benchmark, battery):
    scenario = build_scenario()
    query = parse_query(
        "SELECT A.hum FROM sensors A, sensors B, sensors C "
        "WHERE A.temp - B.temp > 11.0 AND B.temp - C.temp > 11.0 ONCE"
    )
    benchmark(lambda: scenario.run(query, SensJoin()))
