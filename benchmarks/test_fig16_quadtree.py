"""E7 — Fig. 16: influence of the quadtree representation (4% fraction).

Paper: sending only join attributes cuts the collection step ~38% below the
external join; the quadtree representation roughly halves the remaining
pre-computation volume (some nodes cannot profit — their payload is already
a single packet).
"""

import pytest

from repro.bench.experiments import fig16_quadtree_influence
from repro.bench.workloads import build_scenario, calibrated_query
from repro.joins.sensjoin import SensJoin, SensJoinConfig

from conftest import register_series


@pytest.fixture(scope="module")
def series():
    result = fig16_quadtree_influence()
    register_series(
        result,
        "collection: external > sens-no-quad > sens-join (quadtree ~halves bytes)",
    )
    return result


def test_join_attr_only_cheaper_than_external(series):
    rows = {row[0]: row for row in series.rows}
    assert rows["sens-no-quad"][1] <= rows["external-join"][1]


def test_quadtree_cheaper_than_raw(series):
    rows = {row[0]: row for row in series.rows}
    assert rows["sens-join"][1] <= rows["sens-no-quad"][1]


def test_quadtree_total_beats_raw_total(series):
    rows = {row[0]: row for row in series.rows}
    assert rows["sens-join"][2] <= rows["sens-no-quad"][2]


def test_fig16_benchmark(benchmark, series):
    scenario = build_scenario()
    query = calibrated_query(scenario, 3, 5, 0.04)
    benchmark(lambda: scenario.run(query, SensJoin(SensJoinConfig(representation="raw"))))
