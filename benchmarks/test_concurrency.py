"""Beyond the paper — multi-query work sharing under concurrent load.

The paper (§III) feeds SENS-Join one query at a time.  This bench drives a
seeded 16-query workload through the :class:`repro.service.QueryBroker` at
increasing concurrency limits and checks the extension's headline claims:
shared phase-1a collection, composed filters and piggybacked dissemination
save total energy versus serial execution, and batching collapses the tail
latency that queueing inflicts on a serial broker.  Every broker result set
is verified against the serial reference inside the experiment itself, so
the numbers below can only come from exact executions.
"""

import pytest

from repro.bench.experiments import concurrency_study
from repro.bench.workloads import build_scenario, calibrated_query
from repro.service import BrokerConfig, QueryBroker, QueryRequest

from conftest import register_series

CONCURRENCY_LEVELS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def series():
    result = concurrency_study(
        workloads=("poisson", "bursty"),
        concurrency_levels=CONCURRENCY_LEVELS,
        node_count=150,
        seed=0,
    )
    register_series(
        result,
        "beyond the paper: energy amortization grows with concurrency; "
        "bursty load benefits most",
    )
    return result


def test_sharing_saves_energy_at_high_concurrency(series):
    for row in series.as_dicts():
        if row["concurrency"] >= 8:
            assert row["energy_savings_pct"] > 0, row
            assert row["tx_savings_pct"] > 0, row


def test_sharing_monotone_for_bursty_load(series):
    """More admission headroom can only help a bursty workload."""
    rows = [r for r in series.as_dicts() if r["workload"] == "bursty"]
    savings = {r["concurrency"]: r["energy_savings_pct"] for r in rows}
    assert savings[8] >= savings[1]


def test_batching_cuts_tail_latency_for_bursty_load(series):
    rows = {
        r["concurrency"]: r for r in series.as_dicts() if r["workload"] == "bursty"
    }
    assert rows[8]["p95_latency_s"] < rows[1]["p95_latency_s"]


def test_every_query_completes(series):
    for row in series.as_dicts():
        assert row["queries"] == 16, row
        assert row["batches"] >= 1
        assert 0 < row["p50_latency_s"] <= row["p95_latency_s"]


def test_concurrency_benchmark(benchmark, series):
    """Time one shared 8-query batch end to end."""
    scenario = build_scenario(150, seed=0)
    query = calibrated_query(scenario, 1, 3, 0.05)
    requests = [
        QueryRequest(query_id=i, arrival_s=0.0, template_index=0, query=query)
        for i in range(8)
    ]
    broker = QueryBroker(
        scenario.network,
        scenario.world,
        BrokerConfig(concurrency=8),
        tree=scenario.tree,
    )
    benchmark(lambda: broker.run(requests))
