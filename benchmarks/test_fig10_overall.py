"""E1 — Fig. 10: overall transmissions vs fraction of nodes in the result.

Paper: SENS-Join reduces overall energy consumption by up to ~80% (33% join
attributes) / up to two-thirds (60%), and stays superior until 60-80% of the
nodes join.
"""

import pytest

from repro.bench.experiments import fig10_overall
from repro.bench.workloads import build_scenario, calibrated_query
from repro.joins.sensjoin import SensJoin

from conftest import register_series

FRACTIONS = (0.01, 0.03, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80)


@pytest.fixture(scope="module", params=["33", "60"])
def series(request):
    ratio = request.param
    result = fig10_overall(ratio, fractions=FRACTIONS)
    register_series(
        result,
        "savings large at small fractions (paper: up to 80%/66%), "
        "break-even once 60-80% of nodes join",
    )
    return result


def test_fig10_shape(series):
    savings = series.column("savings_pct")
    assert savings[0] == max(savings)
    assert savings[0] > 25.0
    assert savings[-1] < savings[0] - 30.0  # clear degradation toward 80%


def test_fig10_benchmark(benchmark, series):
    """Time one SENS-Join execution at the default setting (5% fraction)."""
    scenario = build_scenario()
    query = calibrated_query(scenario, 1, 3, 0.05)
    benchmark(lambda: scenario.run(query, SensJoin()))
