"""E5 — Fig. 14: influence of the network size (constant density).

Paper: absolute savings grow slightly superlinearly with the network size
(the Treecut start-up region weighs less in larger networks).
"""

import pytest

from repro.bench.experiments import fig14_network_size

from conftest import register_series


@pytest.fixture(scope="module")
def series():
    result = fig14_network_size()
    register_series(
        result,
        "absolute saved transmissions grow (slightly superlinearly) with size",
    )
    return result


def test_absolute_savings_grow_with_size(series):
    saved = series.column("saved_tx")
    assert saved == sorted(saved)
    assert saved[-1] > saved[0]


def test_relative_savings_do_not_collapse(series):
    pct = series.column("savings_pct")
    assert min(pct) > 0
    # Slightly superlinear: the relative savings must not shrink much.
    assert pct[-1] >= pct[0] - 5.0


def test_fig14_benchmark(benchmark, series):
    """Time the full size sweep's smallest configuration end-to-end."""
    from repro.bench.workloads import build_scenario, calibrated_query
    from repro.joins.sensjoin import SensJoin

    smallest = series.column("nodes")[0]
    scenario = build_scenario(int(smallest))
    query = calibrated_query(scenario, 1, 3, 0.05)
    benchmark(lambda: scenario.run(query, SensJoin()))
