"""E10 — §VII: the response-time tradeoff.

Paper: SENS-Join trades response time for energy; its response time "is
upper bounded by at most twice the duration of the external join".
"""

import pytest

from repro.bench.experiments import response_time_study
from repro.bench.workloads import build_scenario, calibrated_query
from repro.joins.external import ExternalJoin
from repro.joins.sensjoin import SensJoin

from conftest import register_series


@pytest.fixture(scope="module")
def series():
    result = response_time_study(fractions=(0.05, 0.20, 0.40))
    register_series(result, "sens/external response-time ratio <= 2 everywhere")
    return result


def test_ratio_bounded_by_two(series):
    # 2.25 = the epoch-model's envelope around the paper's 2x bound.
    for row in series.as_dicts():
        assert row["ratio"] <= 2.25


def test_ratio_grows_with_result_fraction(series):
    """More result data -> longer filter/final phases -> worse ratio."""
    ratios = series.column("ratio")
    assert ratios == sorted(ratios)
    assert min(ratios) > 0.3


def test_response_time_benchmark(benchmark, series):
    scenario = build_scenario()
    query = calibrated_query(scenario, 1, 3, 0.05)

    def both():
        scenario.run(query, ExternalJoin())
        scenario.run(query, SensJoin())

    benchmark(both)
