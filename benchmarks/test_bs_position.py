"""A5 — robustness of the savings to the base-station placement.

The paper does not pin the access point's position.  The comparison must
hold wherever the base station sits; the tree depth it induces modulates the
magnitude (deeper trees -> more interior forwarding -> larger savings).
"""

import pytest

from repro.bench.experiments import bs_position_study
from repro.bench.workloads import build_scenario, calibrated_query
from repro.joins.external import ExternalJoin

from conftest import register_series


@pytest.fixture(scope="module")
def series():
    result = bs_position_study(node_count=300)
    register_series(result, "SENS-Join wins for every placement; depth modulates magnitude")
    return result


def test_sens_wins_everywhere(series):
    for row in series.as_dicts():
        assert row["savings_pct"] > 0, row


def test_depth_modulates_savings(series):
    rows = sorted(series.as_dicts(), key=lambda r: r["tree_height"])
    assert rows[0]["savings_pct"] < rows[-1]["savings_pct"]


def test_corner_is_deepest(series):
    rows = {row["placement"]: row["tree_height"] for row in series.as_dicts()}
    assert rows["corner"] >= rows["edge-centre"] >= rows["area-centre"]


def test_bs_position_benchmark(benchmark, series):
    scenario = build_scenario()
    query = calibrated_query(scenario, 1, 3, 0.05)
    benchmark(lambda: scenario.run(query, ExternalJoin()))
