"""E12 — continuous queries with temporal suppression (§VIII future work).

Beyond the paper's evaluation: the incremental executor's steady-state
per-round cost vs repeated snapshot executions, across drift rates.  Slow
drift -> large savings (quantized points rarely move); fast drift -> the
advantage degrades gracefully toward the snapshot cost.
"""

import pytest

from repro.bench.experiments import continuous_study

from conftest import register_series


@pytest.fixture(scope="module")
def series():
    result = continuous_study(node_count=300, rounds=5)
    register_series(
        result,
        "steady-state saving largest at slow drift, degrading with drift rate",
    )
    return result


def test_slow_drift_saves_substantially(series):
    rows = series.as_dicts()
    assert rows[0]["steady_saving_pct"] > 25.0


def test_savings_degrade_with_drift(series):
    savings = series.column("steady_saving_pct")
    assert savings == sorted(savings, reverse=True)


def test_round0_pays_snapshot_like_cost(series):
    for row in series.as_dicts():
        assert row["round0_tx"] >= row["steady_tx"]


def test_continuous_benchmark(benchmark, series):
    """Time one steady-state incremental round."""
    from repro.data.relations import SensorWorld
    from repro.joins.incremental import IncrementalSensJoin
    from repro.query.parser import parse_query
    from repro.sim.network import DeploymentConfig, deploy_uniform

    network = deploy_uniform(DeploymentConfig(node_count=300, area_side_m=470.0, seed=9))
    world = SensorWorld.homogeneous(
        network, seed=9, area_side_m=470.0, drift_rate=0.0001
    )
    query = parse_query(
        "SELECT A.hum, B.hum FROM sensors A, sensors B "
        "WHERE A.temp - B.temp > 23.7 SAMPLE PERIOD 60"
    )
    executor = IncrementalSensJoin(network, world, query, tree_seed=9)
    executor.run_round(0.0)
    round_counter = iter(range(1, 100000))

    benchmark(lambda: executor.run_round(next(round_counter) * 60.0))
