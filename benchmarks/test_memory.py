"""§IV-C — Selective Filter Forwarding memory audit.

The paper caps SubtreeJoinAtts at 500 bytes and claims the cap only binds
"close to the root" while "the mechanism has its main benefit towards the
leaves".  This bench records every node's stored size by tree depth.
"""

import pytest

from repro.bench.experiments import memory_study
from repro.bench.workloads import build_scenario, calibrated_query
from repro.joins.sensjoin import SensJoin
from repro.sim.trace import ListTracer

from conftest import register_series


@pytest.fixture(scope="module")
def series():
    result = memory_study()
    register_series(
        result,
        "stored bytes fall with depth; the 500 B cap binds near the root only",
    )
    return result


def test_memory_falls_with_depth(series):
    means = series.column("mean_bytes")
    assert means[0] > means[-1]


def test_overflows_only_near_root(series):
    """The cap binds in the upper part of the tree only: no overflow in the
    deeper half of the depth buckets (towards the leaves)."""
    rows = series.as_dicts()
    deeper_half = rows[(len(rows) + 1) // 2:]
    for row in deeper_half:
        assert row["overflows"] == 0, row
    # And the leafmost bucket is always clean.
    assert rows[-1]["overflows"] == 0


def test_all_stored_sizes_within_cap(series):
    for row in series.as_dicts():
        assert row["max_bytes"] <= 500


def test_memory_benchmark(benchmark, series):
    scenario = build_scenario()
    query = calibrated_query(scenario, 3, 5, 0.05)

    def run_traced():
        tracer = ListTracer()
        scenario.run(query, SensJoin(tracer=tracer))
        return len(tracer)

    benchmark(run_traced)
