"""E4 — Fig. 13: savings vs ratio (1 join attribute / x attributes overall).

Paper: same trend as Fig. 12 at the other end of the spectrum; the x = 1
point is the worst case (100% ratio) and bounds the savings from below.
"""

import pytest

from repro.bench.experiments import fig13_ratio1
from repro.bench.workloads import build_scenario, calibrated_query
from repro.joins.sensjoin import SensJoin

from conftest import register_series


@pytest.fixture(scope="module")
def series():
    result = fig13_ratio1()
    register_series(
        result,
        "savings grow as 1/x falls (x: 1 -> 5); x=1 is the lower bound",
    )
    return result


def test_more_attributes_more_savings(series):
    by_total = dict(zip(series.column("total_attrs"), series.column("savings_pct")))
    assert by_total[5] > by_total[1]
    assert by_total[3] >= by_total[1]


def test_worst_case_not_catastrophic(series):
    by_total = dict(zip(series.column("total_attrs"), series.column("savings_pct")))
    assert by_total[1] > -25.0


def test_fig13_benchmark(benchmark, series):
    scenario = build_scenario()
    query = calibrated_query(scenario, 1, 1, 0.05)
    benchmark(lambda: scenario.run(query, SensJoin()))
