"""A1 — ablation study of SENS-Join's design choices (DESIGN.md).

Not a paper figure: quantifies each mechanism's individual contribution
(Treecut, Selective Filter Forwarding, quadtree representation, D_max).
"""

import pytest

from repro.bench.experiments import ablation_study
from repro.bench.workloads import build_scenario, calibrated_query
from repro.joins.sensjoin import SensJoin, SensJoinConfig

from conftest import register_series


@pytest.fixture(scope="module")
def series():
    result = ablation_study()
    register_series(
        result,
        "every disabled mechanism costs transmissions; D_max=30 close to best",
    )
    return result


def rows_by_variant(series):
    return {row[0]: dict(zip(series.columns, row)) for row in series.rows}


def test_default_beats_every_single_ablation(series):
    rows = rows_by_variant(series)
    default = rows["default(dmax=30)"]["total_tx"]
    assert default <= rows["no-treecut"]["total_tx"]
    assert default <= rows["no-selective-fwd"]["total_tx"]
    assert default <= rows["raw-representation"]["total_tx"]


def test_all_variants_beat_external(series):
    rows = rows_by_variant(series)
    external = rows["external-join"]["total_tx"]
    for variant, row in rows.items():
        if variant == "external-join":
            continue
        assert row["total_tx"] < external, variant


def test_paper_dmax_choice_is_reasonable(series):
    rows = rows_by_variant(series)
    default = rows["default(dmax=30)"]["total_tx"]
    best = min(
        rows[v]["total_tx"] for v in ("dmax=10", "dmax=20", "default(dmax=30)", "dmax=40")
    )
    assert default <= best * 1.10  # within 10% of the best D_max tried


def test_ablation_benchmark(benchmark, series):
    scenario = build_scenario()
    query = calibrated_query(scenario, 1, 3, 0.05)
    benchmark(lambda: scenario.run(query, SensJoin(SensJoinConfig(dmax_bytes=0))))
