"""E8 — §VI-B text table: general-purpose compression vs the quadtree.

Paper (1500 nodes, three join attributes — temperature and coordinates):
no compression 5619 packets, bzip2 5666 (inflates), zlib 4571, quadtree 2762
(about half).  The reproduction checks the ordering and the ~2x quadtree
factor on the byte volume.
"""

import pytest

from repro.bench.experiments import compression_table
from repro.bench.workloads import build_scenario, calibrated_query
from repro.codec.compression import compressed_size, encode_raw_tuples

from conftest import register_series


@pytest.fixture(scope="module")
def series():
    result = compression_table()
    register_series(
        result,
        "paper packets: none 5619, bzip2 5666, zlib 4571, quadtree 2762 "
        "(ordering: quadtree < zlib <= none <= bzip2)",
    )
    return result


def test_quadtree_is_best(series):
    by_repr = dict(zip(series.column("representation"), series.column("collection_bytes")))
    assert by_repr["quadtree"] == min(by_repr.values())


def test_quadtree_roughly_halves_bytes(series):
    by_repr = dict(zip(series.column("representation"), series.column("collection_bytes")))
    ratio = by_repr["quadtree"] / by_repr["none"]
    assert 0.25 <= ratio <= 0.7


def test_bzip2_no_better_than_raw(series):
    by_repr = dict(zip(series.column("representation"), series.column("collection_bytes")))
    assert by_repr["bzip2"] >= by_repr["none"] * 0.9


def test_packets_follow_bytes(series):
    by_repr = dict(zip(series.column("representation"), series.column("collection_tx")))
    assert by_repr["quadtree"] <= by_repr["none"]


def test_compression_benchmark(benchmark, series):
    """Time zlib over a 1500-tuple stream (the paper's full-scale volume)."""
    tuples = [
        {"temp": 20.0 + 0.1 * (i % 40), "x": float(i % 300), "y": float(i % 211)}
        for i in range(1500)
    ]
    raw = encode_raw_tuples(tuples, ["temp", "x", "y"])
    benchmark(lambda: compressed_size(raw, "zlib"))
