"""E9 — §VI-A (last paragraph): influence of the maximum packet size.

Paper: with 124-byte packets the external join profits more in overall
packet count, but SENS-Join still relieves the nodes close to the root by
about an order of magnitude.
"""

import pytest

from repro.bench.experiments import packet_size_study
from repro.bench.workloads import build_scenario, calibrated_query
from repro.joins.sensjoin import SensJoin

from conftest import register_series


@pytest.fixture(scope="module")
def series():
    result = packet_size_study()
    register_series(
        result,
        "124B packets: external gains more overall, but near-root nodes stay "
        "~an order of magnitude better off under SENS-Join",
    )
    return result


def test_external_gains_more_from_large_packets(series):
    rows = {row[0]: dict(zip(series.columns, row)) for row in series.rows}
    ext_gain = rows[48]["external_tx"] / max(rows[124]["external_tx"], 1)
    sens_gain = rows[48]["sens_tx"] / max(rows[124]["sens_tx"], 1)
    assert ext_gain >= sens_gain


def test_max_node_reduction_survives_large_packets(series):
    rows = {row[0]: dict(zip(series.columns, row)) for row in series.rows}
    assert rows[124]["max_node_reduction_x"] >= 2.0


def test_packet_size_benchmark(benchmark, series):
    scenario = build_scenario(packet_bytes=124)
    query = calibrated_query(scenario, 1, 3, 0.05)
    benchmark(lambda: scenario.run(query, SensJoin()))
