"""E3 — Fig. 12: savings vs ratio (3 join attributes / x attributes overall).

Paper: savings increase as the ratio decreases; even at a 100% ratio
SENS-Join saves transmissions thanks to the quadtree representation.
"""

import pytest

from repro.bench.experiments import fig12_ratio3
from repro.bench.workloads import build_scenario, calibrated_query
from repro.joins.sensjoin import SensJoin

from conftest import register_series


@pytest.fixture(scope="module")
def series():
    result = fig12_ratio3()
    register_series(
        result,
        "savings grow as 3/x falls (x: 3 -> 5); still competitive at 100% ratio",
    )
    return result


def test_lower_ratio_saves_more(series):
    by_total = dict(zip(series.column("total_attrs"), series.column("savings_pct")))
    assert by_total[5] >= by_total[3]


def test_external_cost_grows_with_attribute_count(series):
    by_total = dict(zip(series.column("total_attrs"), series.column("external_tx")))
    assert by_total[5] > by_total[3]


def test_fig12_benchmark(benchmark, series):
    scenario = build_scenario()
    query = calibrated_query(scenario, 3, 5, 0.05)
    benchmark(lambda: scenario.run(query, SensJoin()))
