"""Benchmark-suite plumbing.

Each benchmark module computes its experiment series once (module-scoped
fixtures), registers the rendered table here, and times one representative
protocol execution with pytest-benchmark.  The registered tables are printed
in the terminal summary (so they survive output capture) and saved as CSV
under ``benchmarks/results/``.

Scale: the suite runs at 600 nodes by default (same node density as the
paper's 1500-node setting); set ``REPRO_SCALE=paper`` for full size.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from repro.bench.reporting import ExperimentSeries, render_table, save_csv

RESULTS_DIR = Path(__file__).parent / "results"

_TABLES: List[str] = []


def register_series(series: ExperimentSeries, expectation: str) -> None:
    """Record a finished experiment for summary printing + CSV output."""
    save_csv(series, RESULTS_DIR)
    _TABLES.append(render_table(series) + f"\n   paper expectation: {expectation}\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for table in _TABLES:
        for line in table.splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")
