"""Robustness — the headline savings across independent deployments.

The paper's plots are single simulation runs; this bench repeats the
default-setting comparison over several seeds and checks the conclusion is
topology-independent: SENS-Join wins at the 5% fraction for *every* seed,
and the most loaded node is relieved everywhere.
"""

import pytest

from repro.bench.experiments import variance_study
from repro.bench.workloads import build_scenario, calibrated_query
from repro.joins.sensjoin import SensJoin

from conftest import register_series

SEEDS = (0, 1, 2, 3, 4)


@pytest.fixture(scope="module")
def series():
    result = variance_study(seeds=SEEDS)
    register_series(result, "positive savings for every seed; modest spread")
    return result


def test_sens_wins_for_every_seed(series):
    for row in series.as_dicts():
        assert row["savings_pct"] > 0, row


def test_max_node_relieved_for_every_seed(series):
    for row in series.as_dicts():
        assert row["max_node_reduction_x"] > 1.0, row


def test_spread_is_modest(series):
    savings = series.column("savings_pct")
    mean = sum(savings) / len(savings)
    spread = max(savings) - min(savings)
    assert spread < mean  # the effect dwarfs the topology noise


def test_variance_benchmark(benchmark, series):
    scenario = build_scenario(seed=1)
    query = calibrated_query(scenario, 1, 3, 0.05)
    benchmark(lambda: scenario.run(query, SensJoin()))
