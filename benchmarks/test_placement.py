"""§IV-E — join-location analysis: is the base station really optimal?

The paper fixes both computations at the base station based on a byte-hops
cost analysis [20].  This bench evaluates that analysis on the filtered
workloads: at every result fraction the base station must beat the best
in-network mediator, because the post-filter join result is at least as
large as its input.
"""

import pytest

from repro.bench.experiments import placement_study
from repro.bench.workloads import build_scenario, calibrated_query
from repro.joins.placement import analyze_join_location

from conftest import register_series


@pytest.fixture(scope="module")
def series():
    result = placement_study()
    register_series(
        result,
        "base station optimal at every fraction once the filter applied",
    )
    return result


def test_base_station_always_optimal_post_filter(series):
    for row in series.as_dicts():
        assert row["bs_optimal"] == "True", row


def test_result_rows_exceed_inputs(series):
    """The §IV-E intuition itself: filtered selectivity is low."""
    for row in series.as_dicts():
        if row["fraction"] >= 0.2:
            assert row["result_rows"] >= row["filtered_inputs"]


def test_placement_benchmark(benchmark, series):
    scenario = build_scenario()
    contributors = scenario.network.sensor_node_ids[:50]
    benchmark(
        lambda: analyze_join_location(
            scenario.network, contributors, tuple_bytes=6,
            result_rows=100, result_row_bytes=4,
        )
    )
