"""Terminal visualisation: see the paper's mechanisms at work.

Renders, for one 400-node deployment:

1. the temperature field (spatial correlation — the Fig. 4 effect);
2. the routing tree's hop counts (the base station sits at the bottom edge);
3. the per-node transmission load under the external join vs SENS-Join —
   the external join's hot spine toward the base station visibly fades;
4. the cost breakdown histogram (Fig. 15 in one glance).
"""

from repro.bench.ascii_viz import (
    render_field,
    render_histogram,
    render_node_load,
    render_tree_depths,
)
from repro.data.relations import SensorWorld
from repro.joins.runner import run_snapshot
from repro.query.parser import parse_query
from repro.routing.ctp import build_tree
from repro.sim.network import DeploymentConfig, deploy_uniform

QUERY = """
    SELECT A.hum, A.pres, B.hum, B.pres
    FROM sensors A, sensors B
    WHERE A.temp - B.temp > 9.0
    ONCE
"""


def main() -> None:
    side = 542.0
    network = deploy_uniform(DeploymentConfig(node_count=400, area_side_m=side, seed=5))
    world = SensorWorld.homogeneous(network, seed=5, area_side_m=side)
    tree = build_tree(network, seed=5)
    world.take_snapshot(0.0)
    query = parse_query(QUERY, catalog=world.catalog)

    print("=== temperature field (spatially correlated) ===")
    print(render_field(network, "temp", width=64, height=20))

    print("\n=== routing-tree hop counts ===")
    print(render_tree_depths(network, tree, width=64, height=20))

    outcomes = {}
    for algorithm in ("external-join", "sens-join"):
        outcome = run_snapshot(network, world, query, algorithm, tree=tree, tree_seed=5)
        outcomes[algorithm] = outcome
        loads = {
            node_id: outcome.stats.node_tx_packets(node_id)
            for node_id in network.sensor_node_ids
        }
        print(f"\n=== per-node transmissions: {algorithm} "
              f"(total {outcome.total_transmissions}) ===")
        print(render_node_load(network, loads, width=64, height=20))

    print("\n=== SENS-Join phase breakdown ===")
    phases = outcomes["sens-join"].per_phase_transmissions()
    print(render_histogram(sorted(phases.items()), width=40))
    print(render_histogram(
        [("external total", float(outcomes["external-join"].total_transmissions)),
         ("sens-join total", float(outcomes["sens-join"].total_transmissions))],
        width=40,
    ))


if __name__ == "__main__":
    main()
