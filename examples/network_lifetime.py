"""Network lifetime: per-node load, energy, and failure recovery (§VI/§IV-F).

Two studies on one deployment:

1. **Lifetime** — the nodes near the routing-tree root forward everyone
   else's traffic; when their batteries die, the network is cut off.  We run
   the same query under both join methods and compare the energy drawn by
   the most loaded node — the inverse of network lifetime.
2. **Failure recovery** — a relay node dies mid-query; the §IV-F strategy
   (let CTP repair the tree, then re-execute) completes the query over the
   surviving topology.
"""

from repro.data.relations import SensorWorld
from repro.joins.runner import NetworkFailure, run_snapshot, run_with_failures
from repro.query.parser import parse_query
from repro.routing.ctp import build_tree
from repro.sim.network import DeploymentConfig, deploy_uniform

QUERY = """
    SELECT A.hum, A.pres, B.hum, B.pres
    FROM sensors A, sensors B
    WHERE A.temp - B.temp > 9.0
    ONCE
"""


def lifetime_study() -> None:
    side = 542.0
    config = DeploymentConfig(node_count=400, area_side_m=side, seed=5)
    network = deploy_uniform(config)
    world = SensorWorld.homogeneous(network, seed=5, area_side_m=side)
    query = parse_query(QUERY, catalog=world.catalog)

    print("=== Lifetime study (400 nodes) ===")
    results = {}
    for algorithm in ("external-join", "sens-join"):
        outcome = run_snapshot(network, world, query, algorithm, tree_seed=5)
        worst = max(
            (network.nodes[n].ledger.total_energy, n)
            for n in network.sensor_node_ids
        )
        results[algorithm] = (outcome, worst)
        print(
            f"{algorithm:14s}: {outcome.total_transmissions:5d} tx total, "
            f"most loaded node {worst[1]} spent {worst[0]:8.0f} energy units, "
            f"max {outcome.max_node_transmissions()} packets"
        )
    ext_energy = results["external-join"][1][0]
    sens_energy = results["sens-join"][1][0]
    print(
        f"-> per-execution bottleneck energy reduced {ext_energy / sens_energy:.1f}x;"
        " with a fixed battery the network survives that many times more"
        " query executions.\n"
    )


def failure_study() -> None:
    side = 383.0
    config = DeploymentConfig(node_count=200, area_side_m=side, seed=13)
    network = deploy_uniform(config)
    world = SensorWorld.homogeneous(network, seed=13, area_side_m=side)
    query = parse_query(QUERY, catalog=world.catalog)

    # Pick a relay close to the base station (lots of descendants).
    tree = build_tree(network, seed=13)
    victim = max(network.sensor_node_ids, key=lambda n: tree.descendant_counts()[n])
    print("=== Failure recovery (Section IV-F) ===")
    print(f"killing relay node {victim} "
          f"({tree.descendant_counts()[victim]} descendants) during execution...")

    outcome = run_with_failures(
        network, world, query, "sens-join",
        failures=[NetworkFailure("node", victim, attempt=0)],
    )
    print(
        f"query completed after {int(outcome.details['retries'])} aborted "
        f"attempt(s): {outcome.result.match_count} matches, "
        f"{outcome.total_transmissions} transmissions over the repaired tree"
    )
    assert victim not in outcome.result.all_contributing_nodes()
    print(f"node {victim} no longer contributes (it is dead), "
          "all other readings were collected.")


if __name__ == "__main__":
    lifetime_study()
    failure_study()
