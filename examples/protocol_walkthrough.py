"""A microscope on SENS-Join: trace every protocol decision on a tiny grid.

Runs the protocol on a 5x5 grid network (hand-checkable topology) with the
protocol tracer attached and prints the decisions in simulated-time order:
which leaves Treecut removed, who became a proxy, how the filter was pruned
on its way down, and who shipped a complete tuple at the end.  Then the
same story as numbers: the per-phase cost and the final result.
"""

from repro.data.relations import SensorWorld
from repro.joins.runner import run_snapshot
from repro.joins.sensjoin import SensJoin
from repro.query.parser import parse_query
from repro.routing.ctp import build_tree
from repro.sim.network import DeploymentConfig, deploy_grid
from repro.sim.trace import ListTracer

QUERY = """
    SELECT A.hum, B.hum
    FROM sensors A, sensors B
    WHERE A.temp - B.temp > 1.2
    ONCE
"""


def main() -> None:
    config = DeploymentConfig(node_count=25, area_side_m=200.0, radio_range_m=50.0, seed=2)
    network = deploy_grid(config)
    world = SensorWorld.homogeneous(network, seed=2, area_side_m=200.0, length_scale=80.0)
    tree = build_tree(network, tie_break="lowest_id")
    query = parse_query(QUERY, catalog=world.catalog)

    print("5x5 grid, 40 m pitch; routing tree (node: parent):")
    parents = tree.as_parent_map()
    for node_id in sorted(parents):
        print(f"  {node_id:2d} -> {parents[node_id]:2d} (depth {tree.depth(node_id)})")

    tracer = ListTracer()
    outcome = run_snapshot(
        network, world, query, SensJoin(tracer=tracer), tree=tree
    )

    print("\nprotocol trace (simulated time order):")
    for event in sorted(tracer.events, key=lambda e: (e.time, e.node_id)):
        print("  ", event)

    print("\nper-phase transmissions:", outcome.per_phase_transmissions())
    print("details:", {k: round(v, 2) for k, v in sorted(outcome.details.items())})
    print(f"result: {outcome.result.row_count} row(s), "
          f"{len(outcome.result.all_contributing_nodes())} contributing node(s)")


if __name__ == "__main__":
    main()
