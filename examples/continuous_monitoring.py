"""Continuous queries: SAMPLE PERIOD over a drifting environment (§III).

A ``SAMPLE PERIOD x`` query re-executes every x seconds over the most recent
snapshot.  This example lets the physical fields drift between rounds and
reports, per round, the result size and the cost of each SENS-Join phase —
showing how the Join-Attribute-Collection cost stays flat while the
Filter-Dissemination and Final-Result phases track the result size.
"""

from repro.data.relations import SensorWorld
from repro.joins.runner import run_continuous
from repro.query.parser import parse_query
from repro.sim.network import DeploymentConfig, deploy_uniform

QUERY = """
    SELECT A.hum, B.hum
    FROM sensors A, sensors B
    WHERE A.temp - B.temp > 22.8
    SAMPLE PERIOD 300
"""


def main() -> None:
    side = 470.0
    config = DeploymentConfig(node_count=300, area_side_m=side, seed=9)
    network = deploy_uniform(config)
    world = SensorWorld.homogeneous(
        network, seed=9, area_side_m=side, drift_rate=0.00005
    )
    query = parse_query(QUERY, catalog=world.catalog)

    print("Continuous query:", " ".join(QUERY.split()))
    print(f"executing {6} rounds, one per simulated {query.mode.seconds:.0f} s\n")

    outcomes = run_continuous(network, world, query, executions=6, tree_seed=9)

    print(f"{'round':>5} {'matches':>8} {'collect':>8} {'filter':>7} "
          f"{'final':>6} {'total':>6}")
    for index, outcome in enumerate(outcomes):
        phases = outcome.per_phase_transmissions()
        print(
            f"{index:>5} {outcome.result.match_count:>8} "
            f"{phases.get('join-attribute-collection', 0):>8} "
            f"{phases.get('filter-dissemination', 0):>7} "
            f"{phases.get('final-result', 0):>6} "
            f"{outcome.total_transmissions:>6}"
        )

    collect = [o.per_phase_transmissions().get("join-attribute-collection", 0)
               for o in outcomes]
    print(
        "\nNote: the collection phase cost is data-independent "
        f"(constant {collect[0]} packets per round), while filter and final "
        "phases follow the result size — the paper's Fig. 15 in time."
    )

    # ---- the paper's future work: exploit temporal correlation ----------
    from repro.joins.incremental import IncrementalSensJoin

    print("\nIncremental executor (delta collection + filter suppression):")
    executor = IncrementalSensJoin(network, world, query, tree_seed=9)
    print(f"{'round':>5} {'total':>6} {'collect':>8} {'filter':>7} "
          f"{'unchanged':>10}")
    for index in range(6):
        outcome = executor.run_round(index * query.mode.seconds)
        phases = outcome.per_phase_transmissions()
        print(
            f"{index:>5} {outcome.total_transmissions:>6} "
            f"{phases.get('join-attribute-collection', 0):>8} "
            f"{phases.get('filter-dissemination', 0):>7} "
            f"{int(outcome.details['collection_unchanged_subtrees']):>10}"
        )
    print(
        "\nAfter round 0 only *changed* quantized points travel and "
        "unchanged filters are suppressed — the steady-state rounds cost a "
        "fraction of a snapshot execution (Sec. VIII future work)."
    )


if __name__ == "__main__":
    main()
