"""The paper's Query Q1: minimal distance between hot/cold point pairs.

    SELECT MIN(distance(A.x, A.y, B.x, B.y))
    FROM Sensors A, Sensors B
    WHERE A.temp - B.temp > 10.0
    ONCE

"Think of a climate researcher who is interested in the minimal distance
between two points with a temperature difference of more than ten degrees."
(§I, Example 1.)

A plain Gaussian field rarely produces >10 degC differences, so this example
uses a patchy micro-climate (sun/shade plateaus) where such pairs exist —
and shows how the aggregate join finds the closest one.
"""

import numpy as np

from repro.data.fields import PatchyField
from repro.data.relations import SensorWorld, default_fields
from repro.data.sensors import standard_catalog
from repro.joins.runner import run_snapshot
from repro.query.parser import parse_query
from repro.sim.network import DeploymentConfig, deploy_uniform

Q1 = """
    SELECT MIN(distance(A.x, A.y, B.x, B.y))
    FROM sensors A, sensors B
    WHERE A.temp - B.temp > 10.0
    ONCE
"""


def main() -> None:
    side = 542.0
    config = DeploymentConfig(node_count=400, area_side_m=side, seed=7)
    network = deploy_uniform(config)

    # Micro-climate: temperature plateaus (sunlit rock vs shaded creek) with
    # a patch spread chosen so that >10 degC pairs exist but are rare — the
    # selective regime where in-network filtering shines.
    fields = default_fields(side, seed=7)
    fields["temp"] = PatchyField(
        mean=22.0, patch_std=3.4, area_side=side, patches=10, smooth_std=0.4, seed=7
    )
    world = SensorWorld(network, fields, catalog=standard_catalog(side))

    query = parse_query(Q1, catalog=world.catalog)
    print("Q1:", " ".join(Q1.split()))
    print(f"join attributes: {query.join_attributes('A')}  "
          f"(ratio {query.join_attribute_ratio('A'):.0%})\n")

    sens = run_snapshot(network, world, query, "sens-join", tree_seed=7)
    external = run_snapshot(network, world, query, "external-join", tree_seed=7)

    if sens.result.rows:
        answer = list(sens.result.rows[0].values())[0]
        print(f"Minimal distance between a >10 degC pair: {answer:.1f} m")
        print(f"({sens.result.match_count} qualifying pairs in the snapshot)")
    else:
        print("No pair with a temperature difference above 10 degC.")

    print()
    print(f"SENS-Join : {sens.total_transmissions:5d} transmissions "
          f"(max node load {sens.max_node_transmissions()})")
    print(f"External  : {external.total_transmissions:5d} transmissions "
          f"(max node load {external.max_node_transmissions()})")
    assert sens.result.signature() == external.result.signature()
    print("Results identical across both algorithms.")


if __name__ == "__main__":
    main()
