"""The paper's Query Q2 — and the break-even the paper predicts for it.

    SELECT |A.hum - B.hum|, |A.pres - B.pres|
    FROM Sensors A, Sensors B
    WHERE |A.temp - B.temp| < 0.3
      AND distance(A.x, A.y, B.x, B.y) > 100
    ONCE

"The researcher is interested in the correlation of humidity and pressure
with the temperature ... To exclude the influence of spatial correlation, he
requires a minimum distance of 100 m." (§I, Example 2.)

On a dense 600-node field almost every node has a 0.3 degC twin more than
100 m away, so a *large fraction of nodes joins* — the regime right of the
break-even in Fig. 10, where the paper itself says the external join is
optimal ("If the join selectivity is low ... sending the result to the base
station will be more costly than sending the input tuples").  This example
runs Q2 as written and shows exactly that, then runs a selective variant of
the same shape (a temperature-difference tail plus the distance predicate)
where SENS-Join's filtering pays off — the two regimes of Fig. 10 side by
side on one deployment.
"""

from repro.bench.calibrate import measure_result_fraction
from repro.data.relations import SensorWorld
from repro.joins.runner import run_snapshot
from repro.query.parser import parse_query
from repro.sim.network import DeploymentConfig, deploy_uniform

Q2 = """
    SELECT |A.hum - B.hum|, |A.pres - B.pres|
    FROM sensors A, sensors B
    WHERE |A.temp - B.temp| < 0.3
      AND distance(A.x, A.y, B.x, B.y) > 100
    ONCE
"""

Q2_SELECTIVE = """
    SELECT |A.hum - B.hum|, |A.pres - B.pres|
    FROM sensors A, sensors B
    WHERE A.temp - B.temp > 15.0
      AND distance(A.x, A.y, B.x, B.y) > 100
    ONCE
"""


def run_case(network, world, sql, label):
    query = parse_query(sql, catalog=world.catalog)
    world.take_snapshot(0.0)
    fraction = measure_result_fraction(world, query)
    sens = run_snapshot(network, world, query, "sens-join", tree_seed=3)
    external = run_snapshot(network, world, query, "external-join", tree_seed=3)
    assert sens.result.signature() == external.result.signature()
    winner = "SENS-Join" if sens.total_transmissions < external.total_transmissions else "external"
    print(f"--- {label} ---")
    print(f"fraction of nodes in the result: {fraction:.0%} "
          f"({sens.result.match_count} pairs)")
    print(f"SENS-Join : {sens.total_transmissions:5d} tx "
          f"(max node {sens.max_node_transmissions()}, "
          f"{int(sens.details['false_positives'])} false positives)")
    print(f"External  : {external.total_transmissions:5d} tx "
          f"(max node {external.max_node_transmissions()})")
    print(f"=> {winner} wins, as Fig. 10 predicts for this fraction\n")
    return sens


def main() -> None:
    side = 664.0
    config = DeploymentConfig(node_count=600, area_side_m=side, seed=3)
    network = deploy_uniform(config)
    world = SensorWorld.homogeneous(network, seed=3, area_side_m=side, length_scale=60.0)

    run_case(network, world, Q2, "Q2 as written (similarity join, dense field)")
    sens = run_case(network, world, Q2_SELECTIVE, "selective Q2 variant (tail condition)")

    rows = sens.result.rows
    if rows:
        print("first rows of the selective study (|d hum|, |d pres|):")
        for row in rows[:5]:
            values = list(row.values())
            print(f"   {values[0]:6.2f} %RH   {values[1]:6.2f} hPa")


if __name__ == "__main__":
    main()
