"""Fig. 4 revisited: spatial correlation and why the quadtree works.

The paper motivates its compact representation with temperature data from a
real office deployment (the Intel Lab dataset, Fig. 4): nearby motes report
similar values, so a set of quantized join-attribute tuples is highly
redundant.  This example regenerates a synthetic 54-mote lab trace, shows
the correlation, and measures how the quadtree exploits it — comparing the
encoded size against raw tuples, zlib and bzip2 (the §VI-B experiment in
miniature).
"""

import numpy as np

from repro.codec.compression import compressed_size, encode_raw_tuples
from repro.codec.quadtree import QuadtreeCodec
from repro.codec.quantize import Quantizer
from repro.data.labdata import generate_lab_deployment, generate_lab_trace
from repro.data.sensors import SensorCatalog, SensorSpec


def main() -> None:
    motes = generate_lab_deployment(seed=1)
    readings = [r for r in generate_lab_trace(motes, epochs=1, seed=1)]
    positions = {m.mote_id: (m.x, m.y) for m in motes}

    print(f"synthetic lab deployment: {len(motes)} motes on 40 m x 30 m")

    # --- spatial correlation (the Fig. 4 effect) -------------------------
    near, far = [], []
    for a in readings:
        for b in readings:
            if a.mote_id >= b.mote_id:
                continue
            ax, ay = positions[a.mote_id]
            bx, by = positions[b.mote_id]
            distance = np.hypot(ax - bx, ay - by)
            diff = abs(a.temperature - b.temperature)
            (near if distance < 6.0 else far if distance > 25.0 else []).append(diff)
    print(f"mean |temperature difference|: {np.mean(near):.2f} degC for motes "
          f"<6 m apart vs {np.mean(far):.2f} degC for motes >25 m apart\n")

    # --- compact representation on this data ------------------------------
    catalog = SensorCatalog([
        SensorSpec("temp", "degC", 5.0, 40.0, 0.1),
        SensorSpec("x", "m", 0.0, 40.0, 1.0),
        SensorSpec("y", "m", 0.0, 30.0, 1.0),
    ])
    quantizer = Quantizer.for_attributes(catalog, ["temp", "x", "y"])
    codec = QuadtreeCodec.for_quantizer(quantizer, alias_count=2)

    tuples = []
    points = set()
    for reading in readings:
        x, y = positions[reading.mote_id]
        values = {"temp": reading.temperature, "x": x, "y": y}
        tuples.append(values)
        points.add((0b11, quantizer.encode(values)))

    raw = encode_raw_tuples(tuples, ["temp", "x", "y"])
    encoded = codec.encode(points)
    print("encoding one epoch's join-attribute tuples (temp, x, y):")
    print(f"  raw (2 B/attribute) : {len(raw):4d} bytes")
    print(f"  zlib                : {compressed_size(raw, 'zlib'):4d} bytes")
    print(f"  bzip2               : {compressed_size(raw, 'bzip2'):4d} bytes")
    print(f"  quadtree (Sec. V)   : {encoded.byte_length:4d} bytes "
          f"({len(points)} distinct quantized points)")

    roundtrip = codec.decode(encoded)
    assert roundtrip == frozenset(points)
    print("\nquadtree decodes losslessly back to the same point set.")


if __name__ == "__main__":
    main()
