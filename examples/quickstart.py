"""Quickstart: deploy a sensor network, run a join query, compare costs.

Run with::

    python examples/quickstart.py

Deploys 300 simulated sensor nodes, issues one join query in the TinyDB
dialect through the high-level :class:`repro.SensorNetworkDB` facade, and
executes it with both SENS-Join and the external-join baseline, printing the
result and the communication bill of each.
"""

from repro import SensorNetworkDB

QUERY = """
    SELECT A.hum, B.hum
    FROM sensors A, sensors B
    WHERE A.temp - B.temp > 14.5
    ONCE
"""


def main() -> None:
    print("Deploying 300 nodes (paper density, 50 m radio range)...")
    db = SensorNetworkDB(node_count=300, seed=42)
    print(db, "\n")

    print("Query plan:")
    print(db.explain(QUERY))
    print()

    sens = db.execute(QUERY, algorithm="sens-join")
    external = db.execute(QUERY, algorithm="external-join")

    print("SENS-Join :", sens.summary())
    print("External  :", external.summary())
    print()

    assert sens.outcome.result.signature() == external.outcome.result.signature()
    print(f"Both algorithms computed the identical result "
          f"({sens.outcome.result.row_count} rows).")

    saved = 1 - sens.transmissions / external.transmissions
    print(f"SENS-Join used {saved:.0%} fewer transmissions.")
    print("\nFirst result rows:")
    for row in sens.rows[:5]:
        print("  ", {k: round(v, 2) for k, v in row.items()})


if __name__ == "__main__":
    main()
